"""The workload registry: how one :class:`RunConfig` becomes one record.

The paper's evaluation spans three applications, and each is a workload of
the experiment engine:

``squaring``
    ``A·A`` with a permutation strategy (Figs 4–9) — the original engine
    workload, unchanged semantics.

``amg-restriction``
    The AMG Galerkin restriction product (Table III, Figs 10–12): build the
    MIS-2 restriction operator ``R``, optionally permute, then run the left
    multiplication ``RᵀA`` (``amg_phase="rta"``) or the full triple product
    ``RᵀA`` + ``(RᵀA)·R`` (``amg_phase="rtar"``, the default).  The two
    SpGEMMs keep separate ledgers (the paper reports the phases apart) and
    are merged into one record with per-phase extras in ``record.amg``.

``bc``
    Batched approximate betweenness centrality (Figs 13–14): multi-source
    BFS forward search and backward sweep, one SpGEMM per level, with the
    per-iteration series persisted in ``record.bc``.  With
    ``config.resident`` the adjacency operand is made resident once per run
    (the setup appears as a single ``phase="setup"`` entry in the iteration
    series) instead of being re-distributed and re-exposed every level.

``chained-squaring``
    MCL-style iterated squaring ``A^(2^k)`` (``config.square_k`` levels) on
    the resident prepare/execute pipeline: each level's distributed ``C``
    feeds the next level directly, with per-level times/volumes/messages in
    ``record.chain``.

``triangles``
    Distributed masked-SpGEMM triangle counting ``Σ((L·L) ⊙ L)``: the
    strictly lower-triangular pattern ``L`` serves as both operands and the
    mask (resident in the output layout, applied rank-locally).
    ``config.mask_mode="early"`` additionally prunes the 1D fetch plan
    against the mask's column support.  The count is asserted equal to a
    local scipy reference at run time; extras land in ``record.triangles``.

``mcl``
    Full Markov clustering — expansion (resident chained SpGEMM),
    inflation, pruning — iterated to chaos convergence, parameterised by
    ``config.mcl_inflation`` / ``mcl_prune`` / ``mcl_max_iters``.  The
    per-iteration ``{phase, iteration, time, volume, messages, nnz}``
    series (phases expand/inflate/prune/converge) lands in ``record.mcl``.

Workload executors read only modelled counters and distributed-operand
metadata — no executor ever assembles a global output matrix, so
modelled-only engine runs skip global-C assembly entirely (pinned by a
byte-identical-store regression test against ``REPRO_EAGER_ASSEMBLY``).

Every executor receives the already-loaded input matrix and resolved cost
model and returns a :class:`RunRecord` whose ``config_hash`` is left empty
— the engine fills it in (or deliberately leaves it empty for records
produced with matrix/cost-model overrides).

Strategy semantics: the squaring workload threads the partition-derived
block bounds into the 1D algorithms (non-uniform blocks follow the
partitioner's parts, see :func:`repro.apps.squaring.run_squaring`); the
``amg-restriction`` and ``bc`` workloads apply the strategy as a **pure
reordering** over a uniform 1D block distribution — exactly the paper's
protocol for these applications and what the pre-migration benchmark
drivers did (BC §IV-C: METIS *ordering*, partitioning cost amortised away).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

import numpy as np

from ..runtime import CostModel, PhaseLedger
from ..sparse import CSCMatrix
from .config import RunConfig
from .records import (
    AMGStats,
    BCIterationStats,
    BCStats,
    ChainLevelStats,
    ChainStats,
    MCLIterationStats,
    MCLStats,
    MeasuredStats,
    RunRecord,
    TriangleStats,
)

__all__ = ["WORKLOADS", "workload_names", "execute_workload"]


def _algo_kwargs(algorithm: str, config: RunConfig) -> Dict[str, object]:
    """Constructor kwargs the named algorithm accepts from the config."""
    kwargs: Dict[str, object] = {}
    if algorithm in ("1d", "1d-sparsity-aware"):
        kwargs["block_split"] = config.block_split
    if algorithm in ("3d", "3d-split") and config.layers is not None:
        kwargs["layers"] = config.layers
    return kwargs


def _permutation_bytes(A: CSCMatrix, config: RunConfig) -> int:
    """Bytes the permutation-induced redistribution would move (0 for none)."""
    from ..distribution import estimate_redistribution_bytes

    if config.strategy == "none":
        return 0
    return estimate_redistribution_bytes(A, config.nprocs)


def _measured_stats(config: RunConfig, ledger) -> Optional[MeasuredStats]:
    """Distil a run's measured-transfer ledger into record form.

    Returns ``None`` on the simulated backend (no measured ledger exists),
    which keeps simulated record stores byte-identical to pre-backend runs.
    """
    if ledger is None:
        return None
    from .trajectory import machine_tag

    return MeasuredStats.from_ledger(ledger, config.backend, machine=machine_tag())


def _per_rank_times(ledger: PhaseLedger) -> Dict[str, object]:
    arrs = ledger.per_rank_time_arrays()
    times: Dict[str, object] = {
        "comm": arrs["comm"].tolist(),
        "comp": arrs["comp"].tolist(),
        "other": arrs["other"].tolist(),
    }
    # Same totals, same formula as PhaseLedger.load_imbalance — computed here
    # so the record extraction sweeps the ledger once, not twice.  The
    # elementwise sum applies the category additions in dict order, matching
    # RankStats.total_time bit for bit.
    totals = arrs["comm"] + arrs["comp"] + arrs["other"]
    mean = float(np.mean(totals)) if totals.size else 0.0
    times["load_imbalance"] = 1.0 if mean == 0.0 else float(np.max(totals)) / mean
    return times


# ----------------------------------------------------------------------
# squaring
# ----------------------------------------------------------------------

def _execute_squaring(config: RunConfig, A: CSCMatrix, model: CostModel) -> RunRecord:
    from ..apps.squaring import run_squaring  # deferred: keeps worker imports light

    run = run_squaring(
        A,
        algorithm=config.algorithm,
        strategy=config.strategy,
        nprocs=config.nprocs,
        cost_model=model,
        dataset=config.dataset,
        block_split=config.block_split,
        seed=config.seed,
        layers=config.layers,
        backend=config.backend,
    )
    ledger = run.result.ledger
    ranks = _per_rank_times(ledger)
    return RunRecord(
        config=config,
        config_hash="",
        algorithm=run.algorithm,
        elapsed_time=run.result.elapsed_time,
        comm_time=run.result.comm_time,
        comp_time=run.result.comp_time,
        other_time=run.result.other_time,
        communication_volume=run.result.communication_volume,
        message_count=run.result.message_count,
        rdma_gets=run.result.rdma_gets,
        load_imbalance=ranks["load_imbalance"],
        cv_over_mema=run.cv_over_mema,
        permutation_seconds=run.permutation_seconds,
        permutation_bytes=run.permutation_bytes,
        # Distributed nnz — equal to the assembled C's nnz, without assembly.
        output_nnz=run.result.output_nnz,
        conserved=ledger.is_conserved(),
        per_rank_comm=ranks["comm"],
        per_rank_comp=ranks["comp"],
        per_rank_other=ranks["other"],
        workload="squaring",
        measured=_measured_stats(config, run.result.measured),
    )


# ----------------------------------------------------------------------
# chained-squaring
# ----------------------------------------------------------------------

def _execute_chained_squaring(
    config: RunConfig, A: CSCMatrix, model: CostModel
) -> RunRecord:
    from ..apps.squaring import run_chained_squaring

    if config.square_k is None or config.square_k < 1:
        raise ValueError(
            "the chained-squaring workload requires square_k >= 1, got "
            f"{config.square_k!r}"
        )
    run = run_chained_squaring(
        A,
        k=config.square_k,
        algorithm=config.algorithm,
        strategy=config.strategy,
        nprocs=config.nprocs,
        cost_model=model,
        dataset=config.dataset,
        block_split=config.block_split,
        seed=config.seed,
        layers=config.layers,
        backend=config.backend,
    )
    ledger = run.ledger
    ranks = _per_rank_times(ledger)
    categories = ledger.elapsed_time_by_category()
    chain = ChainStats(
        k=run.k,
        final_nnz=run.final.output_nnz,
        levels=[
            ChainLevelStats(
                level=i,
                time=lvl.elapsed_time,
                volume=lvl.communication_volume,
                messages=lvl.message_count,
                output_nnz=lvl.output_nnz,
            )
            for i, lvl in enumerate(run.results)
        ],
    )
    return RunRecord(
        config=config,
        config_hash="",
        algorithm=run.algorithm,
        elapsed_time=ledger.elapsed_time(),
        comm_time=categories["comm"],
        comp_time=categories["comp"],
        other_time=categories["other"],
        communication_volume=ledger.total_bytes(),
        message_count=ledger.total_messages(),
        rdma_gets=ledger.total_rdma_gets(),
        load_imbalance=ranks["load_imbalance"],
        cv_over_mema=run.cv_over_mema,
        permutation_seconds=run.permutation_seconds,
        permutation_bytes=run.permutation_bytes,
        output_nnz=run.final.output_nnz,
        conserved=ledger.is_conserved(),
        per_rank_comm=ranks["comm"],
        per_rank_comp=ranks["comp"],
        per_rank_other=ranks["other"],
        workload="chained-squaring",
        chain=chain,
        measured=_measured_stats(config, run.measured),
    )


# ----------------------------------------------------------------------
# amg-restriction
# ----------------------------------------------------------------------

def _execute_amg(config: RunConfig, A: CSCMatrix, model: CostModel) -> RunRecord:
    from ..apps.amg import build_restriction, left_multiplication, right_multiplication
    from ..apps.squaring import prepare_ordering

    phase = config.amg_phase or "rtar"
    if phase not in ("rta", "rtar"):
        raise ValueError(f"unknown amg_phase {config.amg_phase!r}; expected 'rta' or 'rtar'")
    right_algorithm = config.right_algorithm or "outer-product"

    restriction = build_restriction(A, seed=config.mis_seed)
    permuted, ordering, _wall = prepare_ordering(
        A, config.strategy, config.nprocs, seed=config.seed
    )
    R = (
        restriction.R
        if config.strategy == "none"
        else restriction.R.permute(row_perm=ordering.perm)
    )

    left = left_multiplication(
        R,
        permuted,
        algorithm=config.algorithm,
        nprocs=config.nprocs,
        cost_model=model,
        backend=config.backend,
        **_algo_kwargs(config.algorithm, config),
    )
    right = None
    if phase == "rtar":
        # Chain resident: the left product's distributed C feeds the right
        # multiplication directly — no intermediate global gather/scatter.
        # The modelled counters are identical to the legacy assembled path
        # (assembly was never charged); only the host-side gather disappears.
        right = right_multiplication(
            left,
            R,
            algorithm=right_algorithm,
            nprocs=config.nprocs,
            cost_model=model,
            backend=config.backend,
            **_algo_kwargs(right_algorithm, config),
        )

    # One combined ledger (phases kept apart by prefix) gives the record the
    # exact same Σ-max time conventions as the squaring workload.
    combined = PhaseLedger(nprocs=config.nprocs)
    combined.merge(left.ledger, prefix="rta:")
    if right is not None:
        combined.merge(right.ledger, prefix="rtar:")
    # The measured ledgers merge under the same prefixes as the modelled
    # ones, so the per-phase validation table lines the two up directly.
    combined_measured = None
    if left.measured is not None:
        from ..runtime.shm import MeasuredLedger

        combined_measured = MeasuredLedger(nprocs=config.nprocs)
        combined_measured.merge(left.measured, prefix="rta:")
        if right is not None and right.measured is not None:
            combined_measured.merge(right.measured, prefix="rtar:")
    ranks = _per_rank_times(combined)
    perm_bytes = _permutation_bytes(A, config)

    amg = AMGStats(
        n_fine=restriction.n_fine,
        n_coarse=restriction.n_coarse,
        r_nnz=restriction.R.nnz,
        coarsening_factor=restriction.n_fine / restriction.n_coarse,
        rta_nnz=left.output_nnz,
        left_time=left.elapsed_time,
        left_volume=left.communication_volume,
        left_messages=left.message_count,
        right_time=right.elapsed_time if right is not None else 0.0,
        right_volume=right.communication_volume if right is not None else 0,
        right_messages=right.message_count if right is not None else 0,
        coarse_nnz=right.output_nnz if right is not None else 0,
    )
    algorithm = left.algorithm if right is None else f"{left.algorithm}+{right.algorithm}"
    categories = combined.elapsed_time_by_category()
    return RunRecord(
        config=config,
        config_hash="",
        algorithm=algorithm,
        elapsed_time=combined.elapsed_time(),
        comm_time=categories["comm"],
        comp_time=categories["comp"],
        other_time=categories["other"],
        communication_volume=combined.total_bytes(),
        message_count=combined.total_messages(),
        rdma_gets=combined.total_rdma_gets(),
        load_imbalance=ranks["load_imbalance"],
        cv_over_mema=0.0,
        permutation_seconds=model.beta * perm_bytes,
        permutation_bytes=perm_bytes,
        output_nnz=(right if right is not None else left).output_nnz,
        conserved=combined.is_conserved(),
        per_rank_comm=ranks["comm"],
        per_rank_comp=ranks["comp"],
        per_rank_other=ranks["other"],
        workload="amg-restriction",
        amg=amg,
        measured=_measured_stats(config, combined_measured),
    )


# ----------------------------------------------------------------------
# bc
# ----------------------------------------------------------------------

def _bc_sources(config: RunConfig, n: int) -> Optional[List[int]]:
    """Explicit source list for stride-selection configs (None → sampled)."""
    if config.bc_source_stride is None:
        return None
    stride = int(config.bc_source_stride)
    count = int(config.bc_sources)
    if stride <= 0:
        raise ValueError(f"bc_source_stride must be positive, got {stride}")
    if (count - 1) * stride >= n:
        raise ValueError(
            f"bc_sources={count} with stride {stride} exceeds the {n}-vertex graph"
        )
    return list(range(0, count * stride, stride))


def _execute_bc(config: RunConfig, A: CSCMatrix, model: CostModel) -> RunRecord:
    from ..apps.bc import batched_betweenness_centrality
    from ..apps.squaring import prepare_ordering

    if config.bc_sources is None:
        raise ValueError("the bc workload requires bc_sources to be set")
    permuted, _ordering, _wall = prepare_ordering(
        A, config.strategy, config.nprocs, seed=config.seed
    )
    sources = _bc_sources(config, permuted.nrows)
    # Sampled sources are clamped to the vertex count inside the BC driver;
    # mirror that here so the record reports what actually ran.
    n_sources = (
        len(sources) if sources is not None else min(int(config.bc_sources), permuted.nrows)
    )
    batch_size = config.bc_batch or config.bc_sources
    result = batched_betweenness_centrality(
        permuted,
        sources=sources,
        num_sources=None if sources is not None else config.bc_sources,
        batch_size=batch_size,
        algorithm=config.algorithm,
        nprocs=config.nprocs,
        cost_model=model,
        directed=config.bc_directed,
        seed=config.seed,
        resident=config.resident,
        backend=config.backend,
    )
    perm_bytes = _permutation_bytes(A, config)
    iterations = [
        BCIterationStats(
            phase=r.phase,
            iteration=r.iteration,
            time=r.modelled_time,
            volume=r.communication_volume,
            messages=r.message_count,
            frontier_nnz=r.frontier_nnz,
        )
        for r in result.iterations
    ]
    bc = BCStats(
        sources=n_sources,
        batches=-(-n_sources // int(batch_size)),
        forward_time=result.forward_time,
        backward_time=result.backward_time,
        forward_volume=result.forward_volume,
        backward_volume=result.backward_volume,
        iterations=iterations,
        setup_time=result.setup_time,
        setup_volume=result.setup_volume,
    )
    recs = result.iterations
    return RunRecord(
        config=config,
        config_hash="",
        algorithm=config.algorithm,
        elapsed_time=result.total_time,
        comm_time=sum(r.comm_time for r in recs),
        comp_time=sum(r.comp_time for r in recs),
        other_time=sum(r.other_time for r in recs),
        communication_volume=result.total_volume,
        message_count=result.message_count,
        rdma_gets=sum(r.rdma_gets for r in recs),
        load_imbalance=max((r.load_imbalance for r in recs), default=1.0),
        cv_over_mema=0.0,
        permutation_seconds=model.beta * perm_bytes,
        permutation_bytes=perm_bytes,
        output_nnz=int(np.count_nonzero(result.scores)),
        conserved=result.conserved,
        # Each BC iteration runs on its own simulated cluster, so there is
        # no meaningful cross-iteration per-rank decomposition to persist.
        workload="bc",
        bc=bc,
        measured=_measured_stats(config, result.measured),
    )


# ----------------------------------------------------------------------
# triangles
# ----------------------------------------------------------------------

def _execute_triangles(config: RunConfig, A: CSCMatrix, model: CostModel) -> RunRecord:
    from ..apps.squaring import prepare_ordering
    from ..apps.triangles import run_triangles

    permuted, _ordering, _wall = prepare_ordering(
        A, config.strategy, config.nprocs, seed=config.seed
    )
    run = run_triangles(
        permuted,
        algorithm=config.algorithm,
        nprocs=config.nprocs,
        cost_model=model,
        dataset=config.dataset,
        block_split=config.block_split,
        mask_mode=config.mask_mode or "late",
        layers=config.layers,
        backend=config.backend,
    )
    ledger = run.result.ledger
    ranks = _per_rank_times(ledger)
    perm_bytes = _permutation_bytes(A, config)
    categories = ledger.elapsed_time_by_category()
    triangles = TriangleStats(
        triangles=run.triangles,
        l_nnz=run.l_nnz,
        masked_nnz=run.masked_nnz,
        mask_mode=run.mask_mode,
        reference_match=run.matches_reference,
    )
    return RunRecord(
        config=config,
        config_hash="",
        algorithm=run.algorithm,
        elapsed_time=ledger.elapsed_time(),
        comm_time=categories["comm"],
        comp_time=categories["comp"],
        other_time=categories["other"],
        communication_volume=ledger.total_bytes(),
        message_count=ledger.total_messages(),
        rdma_gets=ledger.total_rdma_gets(),
        load_imbalance=ranks["load_imbalance"],
        cv_over_mema=0.0,
        permutation_seconds=model.beta * perm_bytes,
        permutation_bytes=perm_bytes,
        output_nnz=run.masked_nnz,
        conserved=ledger.is_conserved(),
        per_rank_comm=ranks["comm"],
        per_rank_comp=ranks["comp"],
        per_rank_other=ranks["other"],
        workload="triangles",
        triangles=triangles,
        measured=_measured_stats(config, run.result.measured),
    )


# ----------------------------------------------------------------------
# mcl
# ----------------------------------------------------------------------

def _execute_mcl(config: RunConfig, A: CSCMatrix, model: CostModel) -> RunRecord:
    from ..apps.mcl import run_mcl
    from ..apps.squaring import prepare_ordering

    permuted, _ordering, _wall = prepare_ordering(
        A, config.strategy, config.nprocs, seed=config.seed
    )
    run = run_mcl(
        permuted,
        inflation=config.mcl_inflation if config.mcl_inflation is not None else 2.0,
        prune_threshold=config.mcl_prune if config.mcl_prune is not None else 1e-3,
        max_iterations=(
            config.mcl_max_iters if config.mcl_max_iters is not None else 30
        ),
        algorithm=config.algorithm,
        nprocs=config.nprocs,
        cost_model=model,
        dataset=config.dataset,
        block_split=config.block_split,
        layers=config.layers,
        backend=config.backend,
    )
    ledger = run.ledger
    ranks = _per_rank_times(ledger)
    perm_bytes = _permutation_bytes(A, config)
    categories = ledger.elapsed_time_by_category()
    mcl = MCLStats(
        inflation=run.inflation,
        prune_threshold=run.prune_threshold,
        n_iterations=run.n_iterations,
        converged=run.converged,
        final_chaos=run.final_chaos,
        final_nnz=run.final_nnz,
        n_clusters=run.n_clusters,
        iterations=[
            MCLIterationStats(
                phase=it.phase,
                iteration=it.iteration,
                time=it.time,
                volume=it.volume,
                messages=it.messages,
                nnz=it.nnz,
            )
            for it in run.iterations
        ],
    )
    return RunRecord(
        config=config,
        config_hash="",
        algorithm=run.algorithm,
        elapsed_time=ledger.elapsed_time(),
        comm_time=categories["comm"],
        comp_time=categories["comp"],
        other_time=categories["other"],
        communication_volume=ledger.total_bytes(),
        message_count=ledger.total_messages(),
        rdma_gets=ledger.total_rdma_gets(),
        load_imbalance=ranks["load_imbalance"],
        cv_over_mema=0.0,
        permutation_seconds=model.beta * perm_bytes,
        permutation_bytes=perm_bytes,
        output_nnz=run.final_nnz,
        conserved=ledger.is_conserved(),
        per_rank_comm=ranks["comm"],
        per_rank_comp=ranks["comp"],
        per_rank_other=ranks["other"],
        workload="mcl",
        mcl=mcl,
        measured=_measured_stats(config, run.measured),
    )


WORKLOADS: Dict[str, Callable[[RunConfig, CSCMatrix, CostModel], RunRecord]] = {
    "squaring": _execute_squaring,
    "chained-squaring": _execute_chained_squaring,
    "amg-restriction": _execute_amg,
    "bc": _execute_bc,
    "triangles": _execute_triangles,
    "mcl": _execute_mcl,
}


def workload_names() -> List[str]:
    return list(WORKLOADS)


def execute_workload(config: RunConfig, A: CSCMatrix, model: CostModel) -> RunRecord:
    """Run ``config``'s workload on the loaded input ``A``."""
    if config.workload not in WORKLOADS:
        raise ValueError(
            f"unknown workload {config.workload!r}; available: {sorted(WORKLOADS)}"
        )
    return WORKLOADS[config.workload](config, A, model)

"""Roll experiment records up into a benchmark-trajectory JSON document.

The repo commits one ``BENCH_PRn.json`` per PR (the "perf trajectory"):
a machine-tagged snapshot of the modelled counters the engine produced for
the representative bench set, plus the measured wall-clock of producing
them.  Modelled counters (times, volumes, messages) are deterministic and
comparable across machines and PRs; wall-clock and the machine tag record
where/how fast the snapshot was taken and are **not** comparable across
machines — the split mirrors the record schema's modelled-only rule.

:func:`rollup_records` aggregates per workload; :func:`write_trajectory`
writes the document.  ``benchmarks/trajectory.py`` is the command-line
wrapper that rolls the shared bench store up after a harness run, and
``python -m repro bench`` produces a trajectory directly.
"""

from __future__ import annotations

import json
import platform
import sys
import time
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from .records import RunRecord

__all__ = ["TRAJECTORY_SCHEMA_VERSION", "machine_tag", "rollup_records", "write_trajectory"]

TRAJECTORY_SCHEMA_VERSION = 1


def machine_tag() -> Dict[str, str]:
    """Identify the host that produced a trajectory snapshot."""
    return {
        "hostname": platform.node(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": f"{sys.version_info.major}.{sys.version_info.minor}.{sys.version_info.micro}",
    }


def _record_row(record: RunRecord) -> Dict[str, object]:
    """The compact per-record row a trajectory keeps (modelled-only).

    The one machine-dependent exception is the ``measured`` sub-dict
    present on non-simulated-backend rows — like the document-level
    ``wall_seconds`` it reports where/how fast, never enters cross-PR
    comparison, and is absent from simulated rows entirely.
    """
    row: Dict[str, object] = {
        "config_hash": record.config_hash,
        "workload": record.workload,
        "dataset": record.config.dataset,
        "algorithm": record.algorithm,
        "strategy": record.config.strategy,
        "backend": record.config.backend,
        "nprocs": record.config.nprocs,
        "scale": record.config.scale,
        "elapsed_time": record.elapsed_time,
        "communication_volume": record.communication_volume,
        "message_count": record.message_count,
        "conserved": record.conserved,
    }
    if record.measured is not None:
        row["measured"] = {
            "backend": record.measured.backend,
            "wall_seconds": record.measured.wall_seconds,
            "transfer_seconds": record.measured.transfer_seconds,
            "bytes_received": record.measured.bytes_received,
            "transfers": record.measured.transfers,
            "conserved": record.measured.conserved,
        }
    if record.amg is not None:
        row["amg"] = {
            "left_time": record.amg.left_time,
            "right_time": record.amg.right_time,
            "coarsening_factor": record.amg.coarsening_factor,
        }
    if record.bc is not None:
        row["bc"] = {
            "forward_time": record.bc.forward_time,
            "backward_time": record.bc.backward_time,
            "iterations": len(record.bc.iterations),
        }
    if record.chain is not None:
        row["chain"] = {
            "k": record.chain.k,
            "final_nnz": record.chain.final_nnz,
            "levels": len(record.chain.levels),
        }
    return row


def rollup_records(
    records: Iterable[RunRecord],
    *,
    label: str = "trajectory",
    wall_seconds: Optional[float] = None,
    sweep_stats: Optional[Dict[str, int]] = None,
    extra_sections: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Aggregate records into the trajectory document (one dict, JSON-ready).

    ``wall_seconds`` is the measured host time of producing the records
    (machine-dependent, reported under the machine tag); ``sweep_stats``
    optionally carries the engine's cached/executed split.
    ``extra_sections`` merges additional top-level sections into the document
    (e.g. the ``kernel_walls`` per-variant wall-clock table) — they may not
    collide with the core schema keys.
    """
    records = list(records)
    workloads: Dict[str, Dict[str, object]] = {}
    for record in records:
        agg = workloads.setdefault(
            record.workload,
            {
                "configs": 0,
                "modelled_time": 0.0,
                "communication_volume": 0,
                "message_count": 0,
                "conserved": True,
            },
        )
        agg["configs"] += 1
        agg["modelled_time"] += record.elapsed_time
        agg["communication_volume"] += record.communication_volume
        agg["message_count"] += record.message_count
        agg["conserved"] = bool(agg["conserved"]) and record.conserved
    document: Dict[str, object] = {
        "schema": TRAJECTORY_SCHEMA_VERSION,
        "label": label,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "machine": machine_tag(),
        "total_records": len(records),
        "all_conserved": all(r.conserved for r in records),
        "workloads": {name: workloads[name] for name in sorted(workloads)},
        "records": [_record_row(r) for r in records],
    }
    if wall_seconds is not None:
        document["wall_seconds"] = wall_seconds
    if sweep_stats is not None:
        document["sweep"] = dict(sweep_stats)
    if extra_sections:
        clash = sorted(set(extra_sections) & set(document))
        if clash:
            raise ValueError(f"extra sections collide with schema keys: {clash}")
        document.update(extra_sections)
    return document


def write_trajectory(
    path: Union[str, Path],
    records: Iterable[RunRecord],
    *,
    label: str = "trajectory",
    wall_seconds: Optional[float] = None,
    sweep_stats: Optional[Dict[str, int]] = None,
    extra_sections: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Write the rolled-up trajectory JSON to ``path`` and return it."""
    document = rollup_records(
        records,
        label=label,
        wall_seconds=wall_seconds,
        sweep_stats=sweep_stats,
        extra_sections=extra_sections,
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    return document

"""The experiment engine: ``run_grid`` as a thin client of the scheduler.

``run_grid`` takes a declarative :class:`~repro.experiments.ExperimentGrid`
(or an explicit list of :class:`RunConfig`), submits it as one job to an
ephemeral :class:`~repro.experiments.scheduler.Scheduler`, and blocks for
the records.  All scheduling policy — cache-hit short-circuiting against
the JSONL store, within-grid dedup of identical config hashes (each unique
hash executes exactly once), pool fan-out for pool-safe backends with a
dedicated serial lane for the rest, dataset prewarm, incremental
in-order persistence — lives in :mod:`repro.experiments.scheduler`, where
the long-lived ``repro serve`` service reuses it.  Each config's
``workload`` field selects what runs (squaring, chained squaring, AMG
restriction, betweenness centrality, triangle counting, Markov clustering —
see :mod:`repro.experiments.workloads`); all workloads share the store, the
cache and the pool.  Records come back per unique hash in first-occurrence
order, and only modelled (deterministic) quantities enter a record, so::

    parallel(run_grid(grid)) == serial(run_grid(grid))   # bit-identical

holds by construction, and an interrupted sweep resumes from its store:
already-persisted points are skipped, only the remainder runs.

Worker processes re-load inputs by dataset name through
:func:`repro.matrices.load_dataset`, whose disk cache (see
:mod:`repro.matrices.cache`) makes repeated loads of the same synthetic
matrix a file read instead of a regeneration.  When a process-wide
:class:`~repro.core.pipeline.OperandCache` is installed (the ``repro
serve`` service does), serial-lane executions additionally reuse resident
datasets and distributions across runs — host work only, never a modelled
counter.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Union

from ..matrices import load_dataset, read_matrix_market
from ..runtime import CostModel
from ..sparse import CSCMatrix
from .config import ExperimentGrid, RunConfig, resolve_cost_model
from .faults import hang_point
from .journal import Journal
from .records import RunRecord
from .scheduler import JobRejected, Scheduler
from .store import ResultStore

__all__ = [
    "SweepStats",
    "SweepResult",
    "execute_config",
    "run_grid",
    "JobRejected",
]

#: seconds between periodic progress lines during a long sweep
PROGRESS_INTERVAL_ENV = "REPRO_PROGRESS_INTERVAL"
DEFAULT_PROGRESS_INTERVAL = 10.0


@dataclass
class SweepStats:
    """Bookkeeping for one ``run_grid`` invocation (scheduler counters).

    The residency/disk/stolen counters describe the operand plane — host
    work elided by worker-resident caches, the shm dataset transport and
    affinity routing.  They are diagnostic only and never enter a record.
    """

    total: int = 0
    cached: int = 0
    executed: int = 0
    workers: int = 1
    #: duplicate config hashes collapsed onto a single execution
    deduped: int = 0
    #: executions routed to the dedicated serial lane (non-pool-safe backends)
    serial_lane: int = 0
    #: operand-cache hits/misses/evictions summed over lanes and workers
    residency_hits: int = 0
    residency_misses: int = 0
    residency_evictions: int = 0
    #: pool tasks an idle worker stole off their affinity worker's backlog
    stolen: int = 0
    #: dataset disk-cache (npz) hits/misses attributable to this sweep
    disk_hits: int = 0
    disk_misses: int = 0
    #: worker fault policy: lost attempts re-run / in-flight tasks moved
    #: off a reaped worker / hung workers killed / workers restarted
    retries: int = 0
    reassigned: int = 0
    timeouts: int = 0
    respawns: int = 0
    #: measured wall-clock of the whole sweep (reporting only — never persisted)
    wall_seconds: float = 0.0

    def summary(self) -> str:
        parts = [f"{self.cached} cached", f"{self.executed} executed"]
        if self.deduped:
            parts.append(f"{self.deduped} deduped")
        if self.serial_lane:
            parts.append(f"{self.serial_lane} serial-lane")
        if self.residency_hits or self.residency_misses:
            parts.append(
                f"residency {self.residency_hits}h/{self.residency_misses}m"
            )
        if self.residency_evictions:
            parts.append(f"{self.residency_evictions} evicted")
        if self.stolen:
            parts.append(f"{self.stolen} stolen")
        if self.disk_hits or self.disk_misses:
            parts.append(f"disk {self.disk_hits}h/{self.disk_misses}m")
        if self.retries or self.timeouts or self.respawns:
            parts.append(
                f"faults {self.retries}r/{self.timeouts}t/{self.respawns}w"
            )
        return (
            f"{self.total} configs: {', '.join(parts)} "
            f"({self.workers} worker{'s' if self.workers != 1 else ''}, "
            f"{self.wall_seconds:.2f}s wall)"
        )


@dataclass
class SweepResult:
    """Records (one per unique config hash, in first-occurrence order)
    plus execution statistics."""

    records: List[RunRecord]
    stats: SweepStats

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, idx):
        return self.records[idx]

    def summary(self) -> str:
        """One-line scheduler-counter summary (delegates to ``stats``)."""
        return self.stats.summary()


def _load_input(config: RunConfig) -> CSCMatrix:
    if config.matrix:
        return read_matrix_market(config.matrix)
    # When a process-wide operand cache is installed (the service and every
    # pool worker do), repeated loads of the same dataset are served
    # resident — the cache only ever elides host work, never a modelled
    # charge.  On a cache miss a dataset published over the shm transport
    # (scheduler prewarm) rehydrates zero-copy before the disk cache is
    # even consulted.
    from ..core.pipeline import operand_cache, tag_operand_source
    from ..matrices.transport import shared_dataset

    key = ("dataset", config.dataset, float(config.scale))
    cache = operand_cache()
    if cache is not None:
        hit = cache.get(key)
        if hit is not None:
            return hit
    ref = shared_dataset((config.dataset, float(config.scale)))
    if ref is not None:
        A = ref.materialise()
    else:
        A = load_dataset(config.dataset, scale=config.scale)
    tag_operand_source(A, key)
    if cache is not None:
        cache.put(key, A)
    return A


def execute_config(
    config: RunConfig,
    *,
    matrix: Optional[CSCMatrix] = None,
    cost_model: Optional[CostModel] = None,
) -> RunRecord:
    """Execute one configuration and distil the run into a :class:`RunRecord`.

    The config's ``workload`` field selects what actually runs — squaring,
    the AMG restriction product, or batched betweenness centrality (see
    :mod:`repro.experiments.workloads`).

    Every quantity in the returned record is **modelled and deterministic**
    — seconds from the α–β–γ cost model, payload bytes, message counts —
    with the ledger's conservation status (``bytes_sent == bytes_received``
    per phase) distilled into ``record.conserved``.  The one exception is
    ``record.measured``: on a non-simulated backend it carries the
    machine-tagged measured transfer ledger (see
    :mod:`repro.experiments.records` for the per-field conventions); on the
    simulated backend it is absent so stores stay byte-reproducible.

    ``matrix`` and ``cost_model`` override the config's dataset/model lookup
    for in-process callers that already hold the operand (the classic sweep
    helpers); grid execution across worker processes always resolves both
    from the config so the record stays reproducible from its JSON form.
    Records produced with an override carry an **empty** ``config_hash``:
    the config no longer describes what actually ran, so such a record must
    never be mistaken for a cache hit if a caller appends it to a store.
    """
    from .workloads import execute_workload  # deferred: keeps worker imports light
    from ..core.pipeline import operand_cache, operand_source_tag

    # Fault-injection site: a worker sleeping here stands in for a hung
    # local kernel (exercises the scheduler's timeout/retry policy).
    hang_point("hang-in-kernel")
    A = matrix if matrix is not None else _load_input(config)
    model = cost_model if cost_model is not None else resolve_cost_model(config.cost_model)
    if config.threads is not None:
        model = model.with_threads(config.threads)

    # Pin the input's cache entry while executing: LRU pressure from a
    # concurrent run can then never drop an operand this run is borrowing.
    cache = operand_cache()
    tag = operand_source_tag(A)
    if cache is not None and tag is not None:
        with cache.borrowing(tag):
            record = execute_workload(config, A, model)
    else:
        record = execute_workload(config, A, model)
    overridden = matrix is not None or cost_model is not None
    record.config_hash = "" if overridden else config.config_hash()
    return record


def _execute_worker(config: RunConfig) -> RunRecord:
    """Top-level pool target (must be picklable by name)."""
    return execute_config(config)


def _progress_interval() -> float:
    raw = os.environ.get(PROGRESS_INTERVAL_ENV, "").strip()
    if not raw:
        return DEFAULT_PROGRESS_INTERVAL
    try:
        return max(0.1, float(raw))
    except ValueError:
        return DEFAULT_PROGRESS_INTERVAL


def _progress_line(handle, t0: float) -> str:
    """One helianthus-scan-planner-style status line for a running sweep."""
    c = handle.counters.snapshot()
    finished = c["cached"] + c["done"]
    residency = handle._scheduler.residency_stats()
    faults = residency.get("faults") or {}
    fault_bit = (
        f"faults {faults.get('retries', 0)}r/{faults.get('timeouts', 0)}t/"
        f"{faults.get('respawns', 0)}w · "
        if any(faults.values()) else ""
    )
    return (
        f"progress: {finished}/{c['unique']} unique configs done · "
        f"executed {c['done']}/{c['executed']} · cached {c['cached']} · "
        f"deduped {c['deduped']} · serial-lane {c['serial_lane']} · "
        f"residency {residency['hits']}h/{residency['misses']}m · "
        f"disk {residency['disk_hits']}h/{residency['disk_misses']}m · "
        f"stolen {residency['stolen']} · " + fault_bit +
        f"running {c['running']} · {time.perf_counter() - t0:.1f}s elapsed"
    )


def run_grid(
    grid: Union[ExperimentGrid, Sequence[RunConfig]],
    *,
    workers: int = 0,
    store: Optional[Union[ResultStore, str]] = None,
    force: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    priority: int = 0,
    budget: Optional[int] = None,
    max_inflight_configs: Optional[int] = None,
    worker_cache_mb: Optional[int] = None,
    transport: Optional[bool] = None,
    journal: Optional[Union[Journal, str]] = None,
) -> SweepResult:
    """Execute every config of ``grid``, reusing cached records.

    A thin blocking client of the scheduler: expands the grid, submits it
    as one job to an ephemeral :class:`Scheduler`, streams periodic
    progress lines while waiting, and returns the records (one per unique
    config hash, first-occurrence order — a grid that names the same
    canonical config twice executes and returns it once).

    Parameters
    ----------
    workers:
        ``0``/``1`` runs serially in-process; ``N > 1`` fans the pool-safe
        cache misses out over a ``multiprocessing`` pool of ``N`` workers
        (non-pool-safe backends always take the serial lane).
    store:
        A :class:`ResultStore` (or path) consulted for cache hits before
        executing and appended to afterwards.  ``None`` disables
        persistence (everything executes, nothing is written).
    force:
        Re-execute even on a cache hit; fresh records shadow the old rows.
    progress:
        Optional callback receiving human-readable status lines, including
        a periodic one-line progress update during long sweeps
        (``REPRO_PROGRESS_INTERVAL`` seconds, default 10).
    budget / max_inflight_configs:
        Admission control forwarded to the scheduler; when the job is
        rejected, :class:`JobRejected` is raised (with the reason) before
        anything executes.
    worker_cache_mb / transport:
        Operand-plane knobs forwarded to the scheduler: the per-worker
        resident-operand budget and the shm dataset transport toggle
        (``None`` defers to ``REPRO_SHM_TRANSPORT``).  Host-side only —
        records and stores are byte-identical whatever these are set to.
    journal:
        Optional :class:`Journal` (or directory) write-ahead logging the
        sweep — useful when a one-shot ``run_grid`` should be adoptable
        by a ``repro serve --journal`` service after a crash.
    """
    t0 = time.perf_counter()
    configs = grid.expand() if isinstance(grid, ExperimentGrid) else list(grid)
    say = progress if progress is not None else (lambda _msg: None)

    scheduler_kwargs = {}
    if worker_cache_mb is not None:
        scheduler_kwargs["worker_cache_mb"] = worker_cache_mb
    scheduler = Scheduler(
        workers=workers,
        store=store,
        max_inflight_configs=max_inflight_configs,
        transport=transport,
        journal=journal,
        **scheduler_kwargs,
    )
    try:
        handle = scheduler.submit(
            configs, priority=priority, budget=budget, force=force
        )
        counters = handle.counters
        if counters.cached:
            say(f"cache: reusing {counters.cached}/{counters.total} records")
        if counters.deduped:
            say(
                f"dedup: {counters.deduped} duplicate config(s) collapsed "
                "onto one execution each"
            )
        if counters.executed:
            say(
                f"executing {counters.executed} configs with "
                f"{max(1, workers)} worker(s)"
            )
            if counters.serial_lane:
                say(
                    f"{counters.serial_lane} config(s) on non-pool-safe "
                    "backends run on the serial lane"
                )
        interval = _progress_interval()
        while not handle.finished.wait(interval if progress else None):
            say(_progress_line(handle, t0))
        records = handle.wait()
        if store is not None and counters.executed:
            say(
                f"persisted {scheduler.persisted} new records to "
                f"{scheduler.store.path}"
            )
        residency = scheduler.residency_stats()
        faults = scheduler.fault_stats()
    finally:
        scheduler.shutdown()

    stats = SweepStats(
        total=counters.total,
        cached=counters.cached,
        executed=counters.executed,
        workers=max(1, workers),
        deduped=counters.deduped,
        serial_lane=counters.serial_lane,
        residency_hits=residency["hits"],
        residency_misses=residency["misses"],
        residency_evictions=residency["evictions"],
        stolen=residency["stolen"],
        disk_hits=residency["disk_hits"],
        disk_misses=residency["disk_misses"],
        retries=faults["retries"],
        reassigned=faults["reassigned"],
        timeouts=faults["timeouts"],
        respawns=faults["respawns"],
        wall_seconds=time.perf_counter() - t0,
    )
    return SweepResult(records=records, stats=stats)

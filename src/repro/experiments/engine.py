"""The parallel experiment engine: fan-out execution with result caching.

``run_grid`` takes a declarative :class:`~repro.experiments.ExperimentGrid`
(or an explicit list of :class:`RunConfig`), consults the JSONL store for
records whose config hash already exists (cache hit ⇒ the run is skipped),
and executes the misses — serially, or fanned out over a
``multiprocessing`` pool.  Each config's ``workload`` field selects what
runs (squaring, chained squaring, AMG restriction, betweenness centrality,
triangle counting, Markov clustering — see
:mod:`repro.experiments.workloads`); all workloads share the store, the
cache and the pool.  Records come back in grid order regardless of
completion order, and only modelled (deterministic) quantities enter a
record, so::

    parallel(run_grid(grid)) == serial(run_grid(grid))   # bit-identical

holds by construction, and an interrupted sweep resumes from its store:
already-persisted points are skipped, only the remainder runs.

Worker processes re-load inputs by dataset name through
:func:`repro.matrices.load_dataset`, whose disk cache (see
:mod:`repro.matrices.cache`) makes repeated loads of the same synthetic
matrix a file read instead of a regeneration.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from ..matrices import load_dataset, read_matrix_market
from ..runtime import CostModel
from ..sparse import CSCMatrix
from .config import ExperimentGrid, RunConfig, resolve_cost_model
from .records import RunRecord
from .store import ResultStore

__all__ = ["SweepStats", "SweepResult", "execute_config", "run_grid"]


@dataclass
class SweepStats:
    """Bookkeeping for one ``run_grid`` invocation."""

    total: int = 0
    cached: int = 0
    executed: int = 0
    workers: int = 1
    #: measured wall-clock of the whole sweep (reporting only — never persisted)
    wall_seconds: float = 0.0

    def summary(self) -> str:
        return (
            f"{self.total} configs: {self.cached} cached, {self.executed} executed "
            f"({self.workers} worker{'s' if self.workers != 1 else ''}, "
            f"{self.wall_seconds:.2f}s wall)"
        )


@dataclass
class SweepResult:
    """Records (in grid order) plus execution statistics."""

    records: List[RunRecord]
    stats: SweepStats

    def __iter__(self):
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def __getitem__(self, idx):
        return self.records[idx]


def _load_input(config: RunConfig) -> CSCMatrix:
    if config.matrix:
        return read_matrix_market(config.matrix)
    return load_dataset(config.dataset, scale=config.scale)


def execute_config(
    config: RunConfig,
    *,
    matrix: Optional[CSCMatrix] = None,
    cost_model: Optional[CostModel] = None,
) -> RunRecord:
    """Execute one configuration and distil the run into a :class:`RunRecord`.

    The config's ``workload`` field selects what actually runs — squaring,
    the AMG restriction product, or batched betweenness centrality (see
    :mod:`repro.experiments.workloads`).

    Every quantity in the returned record is **modelled and deterministic**
    — seconds from the α–β–γ cost model, payload bytes, message counts —
    with the ledger's conservation status (``bytes_sent == bytes_received``
    per phase) distilled into ``record.conserved``.  The one exception is
    ``record.measured``: on a non-simulated backend it carries the
    machine-tagged measured transfer ledger (see
    :mod:`repro.experiments.records` for the per-field conventions); on the
    simulated backend it is absent so stores stay byte-reproducible.

    ``matrix`` and ``cost_model`` override the config's dataset/model lookup
    for in-process callers that already hold the operand (the classic sweep
    helpers); grid execution across worker processes always resolves both
    from the config so the record stays reproducible from its JSON form.
    Records produced with an override carry an **empty** ``config_hash``:
    the config no longer describes what actually ran, so such a record must
    never be mistaken for a cache hit if a caller appends it to a store.
    """
    from .workloads import execute_workload  # deferred: keeps worker imports light

    A = matrix if matrix is not None else _load_input(config)
    model = cost_model if cost_model is not None else resolve_cost_model(config.cost_model)
    if config.threads is not None:
        model = model.with_threads(config.threads)

    record = execute_workload(config, A, model)
    overridden = matrix is not None or cost_model is not None
    record.config_hash = "" if overridden else config.config_hash()
    return record


def _execute_worker(config: RunConfig) -> RunRecord:
    """Top-level pool target (must be picklable by name)."""
    return execute_config(config)


def _prewarm_dataset_cache(configs: Sequence[RunConfig]) -> None:
    """Generate each unique dataset once in the parent before fanning out.

    Without this, a cold parallel sweep has every worker miss the disk
    cache simultaneously and regenerate the same synthetic matrix; one
    parent-side load populates the cache so workers only do file reads.
    """
    from ..matrices.cache import dataset_cache_enabled

    if not dataset_cache_enabled():
        return
    for dataset, scale in sorted({
        (c.dataset, c.scale) for c in configs if not c.matrix
    }):
        load_dataset(dataset, scale=scale)


def _collect(produced, store: Optional[ResultStore]) -> List[RunRecord]:
    """Drain records, persisting each as it arrives.

    Appending incrementally (instead of once at the end) is what makes an
    interrupted or partially-failing sweep resumable: every record that
    finished before the abort is already in the store, so the re-run skips
    it as a cache hit.
    """
    fresh: List[RunRecord] = []
    for record in produced:
        if store is not None:
            store.append([record])
        fresh.append(record)
    return fresh


def run_grid(
    grid: Union[ExperimentGrid, Sequence[RunConfig]],
    *,
    workers: int = 0,
    store: Optional[Union[ResultStore, str]] = None,
    force: bool = False,
    progress: Optional[Callable[[str], None]] = None,
) -> SweepResult:
    """Execute every config of ``grid``, reusing cached records.

    Parameters
    ----------
    workers:
        ``0``/``1`` runs serially in-process; ``N > 1`` fans the cache
        misses out over a ``multiprocessing`` pool of ``N`` workers.
    store:
        A :class:`ResultStore` (or path) consulted for cache hits before
        executing and appended to afterwards.  ``None`` disables
        persistence (everything executes, nothing is written).
    force:
        Re-execute even on a cache hit; fresh records shadow the old rows.
    progress:
        Optional callback receiving human-readable status lines.
    """
    t0 = time.perf_counter()
    configs = grid.expand() if isinstance(grid, ExperimentGrid) else list(grid)
    if store is not None and not isinstance(store, ResultStore):
        store = ResultStore(store)

    say = progress if progress is not None else (lambda _msg: None)
    cached: Dict[str, RunRecord] = {}
    if store is not None and not force:
        cached = store.load()

    hashes = [c.config_hash() for c in configs]
    pending = [
        (i, c) for i, (c, h) in enumerate(zip(configs, hashes)) if h not in cached
    ]
    stats = SweepStats(
        total=len(configs),
        cached=len(configs) - len(pending),
        executed=len(pending),
        workers=max(1, workers),
    )
    if stats.cached:
        say(f"cache: reusing {stats.cached}/{stats.total} records")

    fresh: List[RunRecord] = []
    executed: List = []
    if pending:
        say(f"executing {len(pending)} configs with {stats.workers} worker(s)")
        # Non-simulated backends fork transport helper processes of their
        # own, which daemonic pool workers are not allowed to do — those
        # configs always run serially in the parent, whatever ``workers``
        # says.  Pool-vs-parent placement never changes modelled counters.
        pooled = [(i, c) for i, c in pending if c.backend == "simulated"]
        serial = [(i, c) for i, c in pending if c.backend != "simulated"]
        if workers > 1 and len(pooled) > 1:
            if serial:
                say(
                    f"{len(serial)} config(s) on non-simulated backends run "
                    "in the parent process"
                )
            _prewarm_dataset_cache([c for _, c in pooled])
            with multiprocessing.Pool(processes=workers) as pool:
                produced = pool.imap(
                    _execute_worker, [c for _, c in pooled], chunksize=1
                )
                fresh = _collect(produced, store)
            fresh += _collect((execute_config(c) for _, c in serial), store)
            executed = pooled + serial
        else:
            executed = pending
            fresh = _collect((execute_config(c) for _, c in executed), store)
        if store is not None:
            say(f"persisted {len(fresh)} new records to {store.path}")

    # Assemble in grid order: cached rows fill the gaps between fresh ones.
    by_index: Dict[int, RunRecord] = {i: r for (i, _), r in zip(executed, fresh)}
    records = [
        by_index[i] if i in by_index else cached[h]
        for i, h in enumerate(hashes)
    ]

    stats.wall_seconds = time.perf_counter() - t0
    return SweepResult(records=records, stats=stats)

"""The experiment scheduler: jobs, lanes, admission control, dedup.

PR 2's ``run_grid`` hard-wired its scheduling policy — pool sizing, the
serial-in-parent routing of non-daemonic backends, dataset prewarm,
incremental persistence — into one function, so nothing else (the
long-lived ``repro serve`` service, concurrent sweeps sharing a store)
could reuse it.  This module carves that policy out into a reusable
subsystem:

:class:`Job`
    A frozen batch of :class:`RunConfig` points plus a priority and an
    optional per-job budget (the maximum number of *fresh* executions the
    job may trigger).

:class:`Scheduler`
    Owns the worker pool and a dedicated **serial lane**.  ``submit``
    plans a job synchronously — store-backed cache hits are short-circuited,
    duplicate config hashes inside the job collapse onto one task, and
    hashes already in flight (from any job) attach to the existing task's
    future so **each unique hash executes exactly once** — then dispatches
    the misses: pool-safe backends fan out over a ``multiprocessing`` pool,
    backends that fork helper processes of their own (shm — see
    ``Backend.pool_safe``) run on the serial lane.  Admission control
    rejects a job *with a reason* (:class:`JobRejected`) when the scheduler
    is saturated (``max_inflight_jobs`` / ``max_inflight_configs``) or the
    job exceeds its budget, before anything executes.

:class:`JobHandle`
    The submitted job's live view: thread-safe counters
    (cached/deduped/executed/serial-lane/running/done), a subscription API
    streaming progress events (the service forwards these over its
    socket), ``wait()`` for the records, and ``cancel()``.

Determinism contract — unchanged from the engine it replaces: records are
persisted by a per-job collector in the *legacy drain order* (pool-lane
tasks in submission order, then serial-lane tasks), each appended as it
completes, so (a) a store written through the scheduler is byte-identical
to one written by the pre-scheduler engine, and (b) an interrupted job
resumes from the clean prefix it already persisted.  Cache hits and
attached duplicates are never re-appended; the task's *owning* job appends
each executed record exactly once.
"""

from __future__ import annotations

import itertools
import os
import pickle
import queue
import threading
import time
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..runtime.backend import resolve_backend
from .config import ExperimentGrid, RunConfig
from .faults import crash_point
from .journal import Journal
from .records import RunRecord
from .store import ResultStore

__all__ = [
    "Job",
    "JobCounters",
    "JobHandle",
    "JobRejected",
    "Scheduler",
]

#: per-worker operand cache budget (MiB) unless the caller overrides it
DEFAULT_WORKER_CACHE_MB = 256

#: set to ``0``/``false``/``off`` to disable the shared-memory dataset
#: transport (workers fall back to the disk cache / regeneration)
TRANSPORT_ENV = "REPRO_SHM_TRANSPORT"

#: default per-task wall-clock timeout (seconds) for pool tasks; unset =
#: no timeout (a hung worker is only reaped when its process dies)
TASK_TIMEOUT_ENV = "REPRO_TASK_TIMEOUT"

#: default retry budget for pool tasks lost to a dead/hung worker
MAX_RETRIES_ENV = "REPRO_MAX_RETRIES"
DEFAULT_MAX_RETRIES = 1

#: base backoff (seconds) before re-dispatching a retried task; the delay
#: scales linearly with the attempt number
DEFAULT_RETRY_BACKOFF = 0.1


def _transport_env_enabled() -> bool:
    return os.environ.get(TRANSPORT_ENV, "1").strip().lower() not in (
        "0", "false", "off", "no",
    )


def _env_float(name: str) -> Optional[float]:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return None
    try:
        return float(raw)
    except ValueError:
        return None


class JobRejected(RuntimeError):
    """Admission control refused a job; ``reason`` says why.

    Raised by :meth:`Scheduler.submit` *before* anything executes or is
    persisted, so a rejected job has no partial side effects to clean up.
    """

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class Job:
    """A frozen batch of configs submitted to the scheduler."""

    job_id: str
    configs: Tuple[RunConfig, ...]
    #: higher runs first when lanes are contended
    priority: int = 0
    #: max fresh executions this job may trigger (None = unlimited)
    budget: Optional[int] = None
    #: re-execute even on cache hits (fresh rows shadow old store rows)
    force: bool = False


@dataclass
class JobCounters:
    """Thread-safe-by-convention counters (mutated under the scheduler lock)."""

    #: configs submitted, duplicates included
    total: int = 0
    #: unique config hashes in the job
    unique: int = 0
    #: unique hashes served straight from the store / completed-task cache
    cached: int = 0
    #: duplicate submissions collapsed onto one execution: within-job
    #: repeats plus attachments to hashes already in flight from other jobs
    deduped: int = 0
    #: fresh executions this job owns (its misses)
    executed: int = 0
    #: of those, how many were routed to the dedicated serial lane because
    #: their backend cannot run inside daemonic pool workers
    serial_lane: int = 0
    #: tasks currently executing (owned + attached)
    running: int = 0
    #: owned + attached tasks that finished executing
    done: int = 0

    def snapshot(self) -> Dict[str, int]:
        return {
            "total": self.total,
            "unique": self.unique,
            "cached": self.cached,
            "deduped": self.deduped,
            "executed": self.executed,
            "serial_lane": self.serial_lane,
            "running": self.running,
            "done": self.done,
        }


class _Task:
    """One unique config hash in flight (shared by every job that submitted it)."""

    __slots__ = (
        "config", "hash", "lane", "owner", "priority", "seq",
        "state", "record", "error", "cancelled", "done",
        "attempts", "started_at",
    )

    def __init__(self, config: RunConfig, hash_: str, lane: str, owner: str,
                 priority: int, seq: int):
        self.config = config
        self.hash = hash_
        self.lane = lane                  # "pool" | "serial"
        self.owner = owner                # job_id responsible for persistence
        self.priority = priority
        self.seq = seq
        self.state = "queued"             # queued|running|done|failed|cancelled
        self.record: Optional[RunRecord] = None
        self.error: Optional[BaseException] = None
        self.cancelled = False
        self.done = threading.Event()
        #: dispatch attempts so far (retry accounting)
        self.attempts = 0
        #: ``time.monotonic()`` of the current dispatch (timeout detection)
        self.started_at = 0.0


def _execute_task(config: RunConfig) -> RunRecord:
    """Serial-lane executor.

    The late ``from .engine import execute_config`` re-reads the engine
    module's *current* attribute on every call, so tests that monkeypatch
    ``engine.execute_config`` keep working through the scheduler.
    """
    from .engine import execute_config

    return execute_config(config)


class _RemoteTaskError(RuntimeError):
    """Stand-in for a worker exception that could not itself be pickled."""


def _worker_residency_snapshot() -> Dict[str, int]:
    """This worker's resident-state counters, piggybacked on every result."""
    from ..core.pipeline import operand_cache
    from ..matrices import transport as dataset_transport
    from ..matrices.cache import dataset_cache_stats

    snapshot: Dict[str, int] = {}
    cache = operand_cache()
    if cache is not None:
        snapshot.update(cache.stats())
    snapshot.update(dataset_cache_stats())
    snapshot.update(dataset_transport.worker_transport_stats())
    return snapshot


def _pool_worker_main(worker_index, task_queue, result_queue, cache_bytes, env):
    """Persistent pool-worker loop (fork target; module-level by necessity).

    Each worker owns a process-wide :class:`~repro.core.pipeline.OperandCache`
    installed at startup, so the datasets and `DistributedOperand` layouts a
    task materialises stay resident for the next task the affinity router
    sends here.  ``env`` explicitly propagates the dataset disk-cache
    environment (``REPRO_DATASET_CACHE``/``_DIR``) captured at pool creation
    — the worker's cache policy follows the scheduler's, not whatever the
    parent's environment happened to be at fork time.

    Task messages are ``(seq, config, shared_ref_or_None)``; the ref (a
    :class:`~repro.matrices.transport.SharedMatrixRef`) is registered
    process-wide before executing, so the engine's input loader rehydrates
    the dataset zero-copy from shm instead of touching the disk cache.
    Results are ``(worker_index, (kind, seq, payload), residency_snapshot)``.

    Workers arm ``PR_SET_PDEATHSIG`` so a scheduler killed with ``kill -9``
    (or an injected ``os._exit`` crash point, which skips every atexit
    handler) takes its pool down with it — a crashed service must not
    orphan worker processes that would otherwise sit on their task pipes
    forever and pin inherited file descriptors open.
    """
    try:
        import ctypes
        import signal

        libc = ctypes.CDLL(None, use_errno=True)
        libc.prctl(1, signal.SIGKILL, 0, 0, 0)      # PR_SET_PDEATHSIG
        if os.getppid() == 1:       # parent died before the prctl landed
            os._exit(0)
    except Exception:               # pragma: no cover - non-Linux
        pass
    for key, value in env.items():
        if value is None:
            os.environ.pop(key, None)
        else:
            os.environ[key] = value
    from ..core.pipeline import OperandCache, install_operand_cache
    from ..matrices import transport as dataset_transport

    install_operand_cache(OperandCache(max_bytes=cache_bytes))
    while True:
        item = task_queue.get()
        if item is None:
            return
        seq, config, shared_ref = item
        if shared_ref is not None:
            dataset_transport.offer_shared_dataset(
                (config.dataset, float(config.scale)), shared_ref
            )
        try:
            # Late import, like the serial lane: fork children resolve the
            # engine module's *current* attributes, so monkeypatches applied
            # before pool creation keep working.
            from .engine import _execute_worker

            payload = ("done", seq, _execute_worker(config))
        except BaseException as exc:
            try:
                pickle.dumps(exc)
            except Exception:
                exc = _RemoteTaskError(f"{type(exc).__name__}: {exc}")
            payload = ("error", seq, exc)
        snapshot = _worker_residency_snapshot()
        try:
            result_queue.put((worker_index, payload, snapshot))
        except Exception:
            fallback = _RemoteTaskError("worker result could not be pickled")
            result_queue.put((worker_index, ("error", seq, fallback), snapshot))


class _PoolWorker:
    """Parent-side view of one persistent worker process."""

    __slots__ = ("index", "process", "task_queue", "busy", "backlog")

    def __init__(self, index, process, task_queue):
        self.index = index
        self.process = process
        self.task_queue = task_queue
        #: the task currently executing on the worker (one at a time)
        self.busy: Optional[_Task] = None
        #: affinity-routed tasks waiting for this worker
        self.backlog: "deque[_Task]" = deque()

    @property
    def load(self) -> int:
        return len(self.backlog) + (1 if self.busy is not None else 0)


def _affinity_key(config: RunConfig) -> Tuple:
    """What makes two configs share worker-resident state.

    Tasks agreeing on ``(input, scale, nprocs)`` reuse each other's
    resident dataset *and* (layout permitting) distributions, so the
    router sticks them to one worker.
    """
    return (config.matrix or config.dataset, float(config.scale),
            int(config.nprocs))


class JobHandle:
    """Live view of a submitted job: counters, events, results."""

    def __init__(self, job: Job, scheduler: "Scheduler",
                 unique_order: Sequence[str],
                 cached: Dict[str, RunRecord],
                 owned: Dict[str, _Task],
                 attached: Dict[str, _Task],
                 drain_order: Sequence[str]):
        self.job = job
        self.job_id = job.job_id
        self._scheduler = scheduler
        #: unique hashes in first-occurrence order — the result order
        self.unique_order = list(unique_order)
        self.cached = cached
        self.owned = owned
        self.attached = attached
        #: hashes of owned tasks in legacy persistence order
        self.drain_order = list(drain_order)
        self.counters = JobCounters()
        self.state = "running"            # running|done|failed|cancelled
        self.error: Optional[BaseException] = None
        self.finished = threading.Event()
        self._subscribers: List[Callable[[Dict[str, object]], None]] = []
        self._sub_lock = threading.Lock()
        self.submitted_at = time.perf_counter()

    # ------------------------------------------------------------------
    # Events
    # ------------------------------------------------------------------
    def subscribe(self, callback: Callable[[Dict[str, object]], None]) -> None:
        """Register a progress callback; replays the current state so a
        subscriber that arrives after events fired still sees a terminal
        event (no lost ``done``)."""
        with self._sub_lock:
            self._subscribers.append(callback)
            callback(self._event("progress"))
            if self.finished.is_set():
                callback(self._event(self.state))

    def _event(self, kind: str) -> Dict[str, object]:
        event: Dict[str, object] = {
            "event": kind,
            "job_id": self.job_id,
            "state": self.state,
            "counters": self.counters.snapshot(),
        }
        if self.error is not None:
            event["error"] = str(self.error)
        return event

    def _emit(self, kind: str) -> None:
        with self._sub_lock:
            for callback in list(self._subscribers):
                try:
                    callback(self._event(kind))
                except Exception:       # pragma: no cover - subscriber bug
                    pass

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def is_finished(self) -> bool:
        return self.finished.is_set()

    def wait(self, timeout: Optional[float] = None) -> List[RunRecord]:
        """Block until the job finishes; return one record per unique hash
        (first-occurrence order).  Re-raises the first task failure."""
        if not self.finished.wait(timeout):
            raise TimeoutError(
                f"job {self.job_id} did not finish within {timeout}s"
            )
        if self.error is not None:
            raise self.error
        return self.records()

    def records(self) -> List[RunRecord]:
        """One record per unique hash, in first-occurrence order (only
        meaningful once finished; cancelled/unfinished hashes are skipped)."""
        out: List[RunRecord] = []
        for h in self.unique_order:
            if h in self.cached:
                out.append(self.cached[h])
                continue
            task = self.owned.get(h) or self.attached.get(h)
            if task is not None and task.record is not None:
                out.append(task.record)
        return out

    def cancel(self) -> None:
        """Cancel the job: owned tasks that have not started and are not
        shared with another job are skipped; running tasks finish."""
        self._scheduler._cancel_job(self)


class Scheduler:
    """Owns the worker pool + serial lane; schedules jobs of configs.

    Parameters
    ----------
    workers:
        ``0``/``1`` executes everything on the serial lane (in-process);
        ``N > 1`` fans pool-safe misses out over a ``multiprocessing`` pool
        of ``N`` workers (created lazily on first use).
    store:
        Shared :class:`ResultStore` (or path).  Consulted for cache hits at
        submit time; each executed record is appended exactly once by its
        owning job, in the job's deterministic drain order.
    max_inflight_jobs / max_inflight_configs:
        Admission control.  ``submit`` raises :class:`JobRejected` when
        accepting the job would exceed either limit (``None`` = unlimited).
    prewarm:
        Generate each unique dataset once in the parent before pool
        fan-out (the engine's historic cold-cache optimisation).
    journal:
        Optional :class:`Journal` (or directory).  When set, every
        accepted job is write-ahead logged before dispatch and
        :meth:`adopt` can re-admit interrupted jobs after a crash.
    task_timeout / max_retries / retry_backoff:
        Worker fault policy.  A pool task running longer than
        ``task_timeout`` seconds has its worker killed and is retried
        (likewise a task whose worker died), up to ``max_retries`` extra
        attempts with ``retry_backoff * attempt`` seconds of delay.
        Defaults come from ``REPRO_TASK_TIMEOUT`` / ``REPRO_MAX_RETRIES``.
    """

    def __init__(
        self,
        *,
        workers: int = 0,
        store: Optional[Union[ResultStore, str, Path]] = None,
        max_inflight_jobs: Optional[int] = None,
        max_inflight_configs: Optional[int] = None,
        prewarm: bool = True,
        worker_cache_mb: int = DEFAULT_WORKER_CACHE_MB,
        transport: Optional[bool] = None,
        journal: Optional[Union[Journal, str, Path]] = None,
        task_timeout: Optional[float] = None,
        max_retries: Optional[int] = None,
        retry_backoff: Optional[float] = None,
    ):
        self.workers = max(0, int(workers))
        if store is not None and not isinstance(store, ResultStore):
            store = ResultStore(store)
        self.store = store
        if journal is not None and not isinstance(journal, Journal):
            journal = Journal(journal)
        self.journal = journal
        self.max_inflight_jobs = max_inflight_jobs
        self.max_inflight_configs = max_inflight_configs
        self.prewarm = prewarm
        self.worker_cache_mb = max(0, int(worker_cache_mb))
        if task_timeout is None:
            task_timeout = _env_float(TASK_TIMEOUT_ENV)
        self.task_timeout = (
            float(task_timeout) if task_timeout and task_timeout > 0 else None
        )
        if max_retries is None:
            env_retries = _env_float(MAX_RETRIES_ENV)
            max_retries = (
                DEFAULT_MAX_RETRIES if env_retries is None else int(env_retries)
            )
        self.max_retries = max(0, int(max_retries))
        self.retry_backoff = (
            DEFAULT_RETRY_BACKOFF if retry_backoff is None
            else max(0.0, float(retry_backoff))
        )
        #: worker fault policy counters (the ``faults`` block in stats)
        self.faults: Dict[str, int] = {
            "retries": 0, "reassigned": 0, "timeouts": 0, "respawns": 0,
        }
        # Hung-task detection happens on the result loop's poll; it must
        # wake noticeably faster than the timeout it enforces.
        self._poll_interval = (
            1.0 if self.task_timeout is None
            else max(0.05, min(1.0, self.task_timeout / 4.0))
        )
        #: shm dataset transport: ``None`` defers to ``REPRO_SHM_TRANSPORT``
        self._transport_enabled = (
            _transport_env_enabled() if transport is None else bool(transport)
        )

        self._lock = threading.RLock()
        self._tasks: Dict[str, _Task] = {}          # hash -> in-flight task
        self._done: Dict[str, RunRecord] = {}       # completed this lifetime
        self._jobs: Dict[str, JobHandle] = {}
        self._seq = itertools.count()
        self._job_seq = itertools.count(1)
        self._closed = False

        self._serial_queue: "queue.PriorityQueue" = queue.PriorityQueue()
        self._serial_thread: Optional[threading.Thread] = None
        self._pool_workers: List[_PoolWorker] = []
        self._pool_queue: "queue.PriorityQueue" = queue.PriorityQueue()
        self._pool_thread: Optional[threading.Thread] = None
        self._result_queue = None
        self._result_thread: Optional[threading.Thread] = None
        #: affinity key -> worker index (sticky routing)
        self._affinity: Dict[Tuple, int] = {}
        #: latest residency snapshot per worker index
        self._worker_residency: Dict[int, Dict[str, int]] = {}
        #: pool tasks dispatched off their affinity worker (idle stealing)
        self.stolen = 0
        self._transport = None
        # Parent-side disk-cache counters are process-global; snapshot them
        # so residency_stats reports this scheduler's share only.
        from ..matrices.cache import dataset_cache_stats

        self._disk_stats_origin = dataset_cache_stats()
        self._collectors: List[threading.Thread] = []
        #: executed records appended to the store by this scheduler
        self.persisted = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self,
        configs: Union[ExperimentGrid, Sequence[RunConfig]],
        *,
        priority: int = 0,
        budget: Optional[int] = None,
        force: bool = False,
        job_id: Optional[str] = None,
        _adopted: bool = False,
    ) -> JobHandle:
        """Plan and dispatch a job; raises :class:`JobRejected` when saturated.

        Planning is synchronous (cache lookup, dedup, admission, routing);
        execution is asynchronous — use the returned handle to stream
        progress or ``wait()`` for the records.  ``_adopted`` marks a job
        re-admitted by :meth:`adopt`: it bypasses the inflight limits (a
        crash must not strand jobs behind admission control) and is
        journalled as ``job-adopted``.
        """
        config_list = (
            configs.expand() if isinstance(configs, ExperimentGrid)
            else list(configs)
        )
        with self._lock:
            if self._closed:
                raise JobRejected("scheduler is shut down")
            active = [j for j in self._jobs.values() if not j.is_finished]
            if (
                not _adopted
                and self.max_inflight_jobs is not None
                and len(active) >= self.max_inflight_jobs
            ):
                raise JobRejected(
                    f"admission control: {len(active)} job(s) already in "
                    f"flight (max {self.max_inflight_jobs}); retry when one "
                    "finishes"
                )
            # Bound the finished-job history so a long-lived service never
            # grows without limit (status/results stay queryable for the
            # most recent jobs).
            if len(self._jobs) > 1024:
                for jid in [
                    j.job_id for j in self._jobs.values() if j.is_finished
                ][: len(self._jobs) - 1024]:
                    self._jobs.pop(jid, None)
            if job_id is None:
                job_id = f"job-{next(self._job_seq)}"
            job = Job(
                job_id=job_id,
                configs=tuple(config_list),
                priority=priority,
                budget=budget,
                force=force,
            )

            hashes = [c.config_hash() for c in config_list]
            unique: Dict[str, RunConfig] = {}
            for c, h in zip(config_list, hashes):
                unique.setdefault(h, c)

            cached: Dict[str, RunRecord] = {}
            if not force:
                store_cache = self.store.load() if self.store is not None else {}
                for h in unique:
                    if h in self._done:
                        cached[h] = self._done[h]
                    elif h in store_cache:
                        cached[h] = store_cache[h]

            attached: Dict[str, _Task] = {}
            misses: List[Tuple[str, RunConfig]] = []
            for h, c in unique.items():
                if h in cached:
                    continue
                task = self._tasks.get(h)
                if task is not None and not task.cancelled:
                    # In-flight collision: this job rides the existing
                    # future instead of executing the hash a second time.
                    attached[h] = task
                else:
                    misses.append((h, c))

            inflight = len(self._tasks)
            if (
                not _adopted
                and self.max_inflight_configs is not None
                and inflight + len(misses) > self.max_inflight_configs
            ):
                raise JobRejected(
                    f"admission control: job needs {len(misses)} new "
                    f"config(s) but {inflight} are already in flight "
                    f"(max {self.max_inflight_configs}); split the grid or "
                    "retry when the queue drains"
                )
            if budget is not None and len(misses) > budget:
                raise JobRejected(
                    f"budget: job requires {len(misses)} fresh execution(s) "
                    f"but its budget allows {budget}"
                )

            # Write-ahead: the accepted job hits the journal before any
            # task exists, so a crash anywhere past this line leaves a
            # recoverable record ("accepted but unfinished").
            if self.journal is not None:
                self.journal.job_submitted(job, adopted=_adopted)

            # Lane routing, mirroring the legacy engine: the pool is used
            # only when it exists (workers > 1) and more than one of this
            # job's misses can actually ride it; otherwise everything runs
            # on the serial lane in submission order.
            pool_candidates = [
                (h, c) for h, c in misses if resolve_backend(c.backend).pool_safe
            ]
            use_pool = self.workers > 1 and len(pool_candidates) > 1
            owned: Dict[str, _Task] = {}
            pool_order: List[str] = []
            serial_order: List[str] = []
            for h, c in misses:
                pool_ok = resolve_backend(c.backend).pool_safe
                lane = "pool" if (use_pool and pool_ok) else "serial"
                task = _Task(c, h, lane, owner=job_id, priority=priority,
                             seq=next(self._seq))
                self._tasks[h] = task
                owned[h] = task
                (pool_order if lane == "pool" else serial_order).append(h)

            handle = JobHandle(
                job,
                self,
                unique_order=list(unique),
                cached=cached,
                owned=owned,
                attached=attached,
                # Legacy persistence order: pooled configs first (submission
                # order — pool.imap drained in order), then the serial lane.
                drain_order=pool_order + serial_order,
            )
            c = handle.counters
            c.total = len(config_list)
            c.unique = len(unique)
            c.cached = len(cached)
            c.deduped = (len(config_list) - len(unique)) + len(attached)
            c.executed = len(owned)
            c.serial_lane = sum(
                1 for t in owned.values()
                if not resolve_backend(t.config.backend).pool_safe
            )
            self._jobs[job_id] = handle

        # Dispatch outside the lock: prewarm can generate datasets.
        if pool_order:
            self._ensure_pool()
            if self.prewarm:
                self._prewarm([owned[h].config for h in pool_order])
        if serial_order:
            self._ensure_serial_lane()
        for h in pool_order:
            task = owned[h]
            self._pool_queue.put((-task.priority, task.seq, task))
        for h in serial_order:
            task = owned[h]
            self._serial_queue.put((-task.priority, task.seq, task))

        collector = threading.Thread(
            target=self._collect_job, args=(handle,),
            name=f"repro-sched-{job_id}", daemon=True,
        )
        with self._lock:
            self._collectors.append(collector)
        collector.start()
        return handle

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, object]:
        """Scheduler-wide counters (the service's ``stats`` op)."""
        with self._lock:
            jobs = list(self._jobs.values())
            out = {
                "workers": self.workers,
                "jobs_submitted": len(jobs),
                "jobs_active": sum(1 for j in jobs if not j.is_finished),
                "configs_inflight": len(self._tasks),
                "configs_completed": len(self._done),
                "records_persisted": self.persisted,
                "max_inflight_jobs": self.max_inflight_jobs,
                "max_inflight_configs": self.max_inflight_configs,
                "faults": dict(self.faults),
            }
        out["residency"] = self.residency_stats()
        return out

    def fault_stats(self) -> Dict[str, int]:
        """Worker fault policy counters: ``retries`` (lost attempts re-run),
        ``reassigned`` (in-flight tasks moved off a reaped worker),
        ``timeouts`` (hung workers killed), ``respawns`` (workers
        restarted)."""
        with self._lock:
            return dict(self.faults)

    def residency_stats(self) -> Dict[str, object]:
        """Operand-plane counters, aggregated across lanes.

        Worker-resident operand-cache hits/misses/evictions (summed over
        the latest snapshot each pool worker piggybacked on its results)
        plus the parent's own installed cache (the serial lane), the
        dataset disk-cache hit/miss delta attributable to this scheduler,
        the affinity router's ``stolen`` count and the shm transport's
        publication totals.  Purely diagnostic — nothing here ever enters
        a record or a store.
        """
        from ..core.pipeline import operand_cache
        from ..matrices.cache import dataset_cache_stats

        aggregate = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "entries": 0,
            "resident_bytes": 0,
            "disk_hits": 0,
            "disk_misses": 0,
            "attached_segments": 0,
            "materialised": 0,
        }
        with self._lock:
            snapshots = list(self._worker_residency.values())
            stolen = self.stolen
            workers_reporting = len(self._worker_residency)
            transport = self._transport
            faults = dict(self.faults)
        for snapshot in snapshots:
            for key in aggregate:
                aggregate[key] += int(snapshot.get(key, 0))
        cache = operand_cache()
        if cache is not None:
            parent = cache.stats()
            for key in ("hits", "misses", "evictions", "entries",
                        "resident_bytes"):
                aggregate[key] += parent[key]
        disk_now = dataset_cache_stats()
        for key in ("disk_hits", "disk_misses"):
            aggregate[key] += disk_now[key] - self._disk_stats_origin[key]
        aggregate["stolen"] = stolen
        aggregate["workers_reporting"] = workers_reporting
        transport_stats = (
            transport.stats() if transport is not None
            else {"datasets_published": 0, "shm_bytes": 0}
        )
        aggregate.update(transport_stats)
        aggregate["faults"] = faults
        return aggregate

    # ------------------------------------------------------------------
    # Crash recovery
    # ------------------------------------------------------------------
    def adopt(self) -> List[JobHandle]:
        """Re-admit jobs a crashed predecessor left unfinished.

        Run once at startup, before accepting new submissions.  In order:
        truncate any torn tail off the result store, reap shm segments
        orphaned by the dead process, replay the journal (which likewise
        truncates its own torn tail), and re-submit every job lacking a
        ``job-done`` record — same ``job_id``, journalled as
        ``job-adopted``, bypassing admission control.  Hashes the crashed
        run already persisted come back as store cache hits, so recovery
        only executes the remainder and the store converges on the same
        bytes an uninterrupted run would have written.

        Adopted jobs always run with ``force=False`` — an interrupted
        ``force`` job must not re-execute (and duplicate) the rows it
        already persisted.  Returns the adopted handles, journal order.
        """
        if self.store is not None:
            self.store.recover()
        if self.journal is None:
            return []
        from ..matrices.transport import cleanup_orphan_segments

        cleanup_orphan_segments()
        jobs = self.journal.recover()
        # Fresh job ids must not collide with adopted ones.
        max_seq = 0
        for job_id in jobs:
            tail = job_id.rsplit("-", 1)[-1]
            if job_id.startswith("job-") and tail.isdigit():
                max_seq = max(max_seq, int(tail))
        with self._lock:
            if max_seq:
                self._job_seq = itertools.count(max_seq + 1)
            known = set(self._jobs)
        handles: List[JobHandle] = []
        for job in jobs.values():
            if not job.interrupted or job.job_id in known:
                continue
            configs = [RunConfig.from_dict(d) for d in job.configs]
            handles.append(self.submit(
                configs,
                priority=job.priority,
                budget=job.budget,
                force=False,
                job_id=job.job_id,
                _adopted=True,
            ))
        return handles

    def job(self, job_id: str) -> Optional[JobHandle]:
        with self._lock:
            return self._jobs.get(job_id)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def shutdown(self, wait: bool = True, timeout: float = 30.0) -> None:
        """Stop the lanes and the pool.  Idempotent.

        ``wait=True`` joins the per-job collectors first so records that
        already finished executing are persisted before the pool dies.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            collectors = list(self._collectors)
        if wait:
            deadline = time.monotonic() + timeout
            for thread in collectors:
                thread.join(max(0.0, deadline - time.monotonic()))
        if self._serial_thread is not None:
            self._serial_queue.put((float("inf"), -1, None))   # sentinel
            self._serial_thread.join(timeout=5.0)
        if self._pool_thread is not None:
            self._pool_queue.put((float("inf"), -1, None))     # sentinel
            self._pool_thread.join(timeout=5.0)
        if self._result_thread is not None:
            self._result_queue.put(None)                       # sentinel
            self._result_thread.join(timeout=5.0)
        for worker in self._pool_workers:
            try:
                worker.task_queue.put(None)                    # sentinel
            except Exception:
                pass
        for worker in self._pool_workers:
            worker.process.join(timeout=2.0)
            if worker.process.is_alive():  # pragma: no cover - defensive
                worker.process.terminate()
                worker.process.join(timeout=2.0)
        self._pool_workers = []
        if self._transport is not None:
            # Parent-owned segment lifecycle: every published segment is
            # unlinked here, after the workers holding attachments exited.
            self._transport.close()
            self._transport = None

    def __enter__(self) -> "Scheduler":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # ------------------------------------------------------------------
    # Internal: lanes
    # ------------------------------------------------------------------
    def _ensure_serial_lane(self) -> None:
        with self._lock:
            if self._serial_thread is None:
                self._serial_thread = threading.Thread(
                    target=self._serial_loop, name="repro-sched-serial",
                    daemon=True,
                )
                self._serial_thread.start()

    def _ensure_pool(self) -> None:
        with self._lock:
            if self._pool_workers:
                return
            from multiprocessing import get_context, resource_tracker

            from ..matrices.cache import CACHE_DIR_ENV, CACHE_ENV

            # Start the resource tracker *before* forking: workers then
            # inherit the parent's tracker daemon, so their attach-time shm
            # registrations are idempotent set-adds on the daemon that the
            # parent's unlink later clears.  Forking first would hand each
            # worker its own tracker, which unlinks the parent's still-live
            # segments when the worker exits.
            resource_tracker.ensure_running()
            ctx = get_context("fork")
            self._result_queue = ctx.Queue()
            # Satellite: the worker's disk-cache policy is propagated
            # explicitly, not inherited by fork-time accident.
            env = {
                CACHE_ENV: os.environ.get(CACHE_ENV),
                CACHE_DIR_ENV: os.environ.get(CACHE_DIR_ENV),
            }
            cache_bytes = self.worker_cache_mb * 1024 * 1024
            for index in range(self.workers):
                task_queue = ctx.SimpleQueue()
                process = ctx.Process(
                    target=_pool_worker_main,
                    args=(index, task_queue, self._result_queue,
                          cache_bytes, env),
                    daemon=True,
                    name=f"repro-pool-{index}",
                )
                process.start()
                self._pool_workers.append(
                    _PoolWorker(index, process, task_queue)
                )
            self._pool_thread = threading.Thread(
                target=self._pool_loop, name="repro-sched-pool",
                daemon=True,
            )
            self._pool_thread.start()
            self._result_thread = threading.Thread(
                target=self._result_loop, name="repro-sched-results",
                daemon=True,
            )
            self._result_thread.start()

    def _ensure_transport(self):
        """The shm dataset transport (created lazily; None when disabled)."""
        with self._lock:
            if not self._transport_enabled:
                return None
            if self._transport is None:
                from ..matrices.transport import DatasetTransport

                try:
                    self._transport = DatasetTransport()
                except Exception:
                    # No usable /dev/shm: degrade to the disk-cache path.
                    self._transport_enabled = False
                    return None
            return self._transport

    def _serial_loop(self) -> None:
        while True:
            _, _, task = self._serial_queue.get()
            if task is None:
                return
            self._run_inline(task)

    # The pool lane is an affinity router over persistent workers: the
    # dispatcher thread below assigns each task to the worker already
    # holding its operands resident (sticky by ``_affinity_key``), the
    # result thread feeds a worker its next backlog task as each result
    # arrives, and an idle worker steals from the longest backlog so
    # affinity never serialises a sweep.
    def _pool_loop(self) -> None:
        while True:
            _, _, task = self._pool_queue.get()
            if task is None:
                return
            with self._lock:
                if task.cancelled:
                    self._resolve(task, state="cancelled")
                    continue
                worker = self._route_locked(task)
                worker.backlog.append(task)
                self._feed_locked(worker)
                # A task routed onto a busy worker's backlog is stealable:
                # wake idle workers now, or a single-dataset sweep would
                # serialise on its affinity worker while the rest starve
                # (idle workers are otherwise only fed on task completion).
                if worker.backlog:
                    for other in self._pool_workers:
                        if other is not worker and other.busy is None:
                            self._feed_locked(other)

    def _route_locked(self, task: _Task) -> _PoolWorker:
        key = _affinity_key(task.config)
        index = self._affinity.get(key)
        if index is None:
            worker = min(self._pool_workers, key=lambda w: (w.load, w.index))
            self._affinity[key] = worker.index
            return worker
        return self._pool_workers[index]

    def _feed_locked(self, worker: _PoolWorker) -> None:
        """Dispatch the next task to an idle worker (caller holds the lock).

        Prefers the worker's own (affinity-routed) backlog; an idle worker
        with nothing queued steals the *newest* task from the longest other
        backlog — newest because it is the one whose operands are least
        likely to already be resident over there.
        """
        if worker.busy is not None:
            return
        while True:
            stolen = False
            if worker.backlog:
                task = worker.backlog.popleft()
            else:
                victim = max(
                    (w for w in self._pool_workers
                     if w is not worker and w.backlog),
                    key=lambda w: len(w.backlog),
                    default=None,
                )
                if victim is None:
                    return
                task = victim.backlog.pop()
                stolen = True
            if task.cancelled:
                self._resolve(task, state="cancelled")
                continue
            crash_point("kill-before-dispatch")
            shared_ref = None
            if not task.config.matrix:
                transport = self._transport
                if transport is not None:
                    shared_ref = transport.ref(
                        (task.config.dataset, float(task.config.scale))
                    )
            if stolen:
                self.stolen += 1
            task.attempts += 1
            task.started_at = time.monotonic()
            task.state = "running"
            self._note_running(task)
            worker.busy = task
            try:
                worker.task_queue.put((task.seq, task.config, shared_ref))
            except Exception as exc:      # worker pipe gone
                worker.busy = None
                task.error = exc
                self._resolve(task, state="failed")
                continue
            return

    def _result_loop(self) -> None:
        while True:
            try:
                item = self._result_queue.get(timeout=self._poll_interval)
            except queue.Empty:
                self._reap_dead_workers()
                continue
            if item is None:
                return
            worker_index, (kind, seq, payload), snapshot = item
            with self._lock:
                worker = self._pool_workers[worker_index]
                self._worker_residency[worker_index] = snapshot
                task = worker.busy
                if task is None or task.seq != seq:
                    # Stale result: the attempt that produced it was
                    # already reaped (a timeout kill raced the worker
                    # finishing) and a retry owns the hash now.  Accepting
                    # it would resolve — and persist — the task twice.
                    self._feed_locked(worker)
                    continue
                worker.busy = None
                if kind == "done":
                    task.record = payload
                    self._resolve(task, state="done")
                else:
                    task.error = payload
                    self._resolve(task, state="failed")
                self._feed_locked(worker)

    def _reap_dead_workers(self) -> None:
        """The worker fault policy: reap dead *and* hung workers.

        A worker whose process died mid-task, or whose current task has
        run past ``task_timeout`` (the worker is killed), is respawned;
        its in-flight task is retried within the retry budget (else
        failed), and — satellite fix — its affinity backlog is exposed to
        every idle worker *immediately*, instead of waiting for the
        respawned worker to drain it alone.
        """
        with self._lock:
            if self._closed:
                return
            now = time.monotonic()
            reaped = False
            for worker in self._pool_workers:
                task = worker.busy
                dead = not worker.process.is_alive()
                hung = (
                    not dead
                    and task is not None
                    and self.task_timeout is not None
                    and now - task.started_at > self.task_timeout
                )
                if not dead and not hung:
                    continue
                if hung:
                    self.faults["timeouts"] += 1
                    worker.process.kill()
                    worker.process.join(timeout=5.0)
                exitcode = worker.process.exitcode
                worker.busy = None
                # Whatever the worker held resident (pinned operands,
                # attached segments) died with its address space; drop the
                # stale snapshot so residency stats stop counting it.
                self._worker_residency.pop(worker.index, None)
                self.faults["respawns"] += 1
                self._respawn_locked(worker)
                reaped = True
                if task is not None:
                    detail = "timed out" if hung else "died"
                    self._task_failed_locked(task, RuntimeError(
                        f"pool worker {worker.index} {detail} executing "
                        f"{task.hash[:12]} (exit code {exitcode})"
                    ))
            if reaped:
                # The reaped workers' backlogs are stealable *now*: feed
                # every idle worker, not just the respawned ones.
                for worker in self._pool_workers:
                    if worker.busy is None:
                        self._feed_locked(worker)

    def _task_failed_locked(self, task: _Task, error: BaseException) -> None:
        """A pool attempt was lost under ``task`` (worker death/timeout):
        retry within budget, else fail (caller holds the lock)."""
        if (
            not task.cancelled
            and not self._closed
            and task.attempts <= self.max_retries
        ):
            self.faults["retries"] += 1
            self.faults["reassigned"] += 1
            self._note_stopped(task)
            task.state = "queued"
            self._requeue(task, self.retry_backoff * task.attempts)
        else:
            task.error = error
            self._resolve(task, state="failed")

    def _requeue(self, task: _Task, delay: float) -> None:
        """Put a retried task back on the pool queue after ``delay``s."""
        item = (-task.priority, task.seq, task)
        if delay <= 0:
            self._pool_queue.put(item)
            return
        timer = threading.Timer(delay, self._pool_queue.put, args=(item,))
        timer.daemon = True
        timer.start()

    def _respawn_locked(self, worker: _PoolWorker) -> None:
        from multiprocessing import get_context

        from ..matrices.cache import CACHE_DIR_ENV, CACHE_ENV

        ctx = get_context("fork")
        worker.task_queue = ctx.SimpleQueue()
        env = {
            CACHE_ENV: os.environ.get(CACHE_ENV),
            CACHE_DIR_ENV: os.environ.get(CACHE_DIR_ENV),
        }
        worker.process = ctx.Process(
            target=_pool_worker_main,
            args=(worker.index, worker.task_queue, self._result_queue,
                  self.worker_cache_mb * 1024 * 1024, env),
            daemon=True,
            name=f"repro-pool-{worker.index}",
        )
        worker.process.start()

    def _run_inline(self, task: _Task) -> None:
        with self._lock:
            if task.cancelled:
                self._resolve(task, state="cancelled")
                return
            crash_point("kill-before-dispatch")
            task.attempts += 1
            task.started_at = time.monotonic()
            task.state = "running"
            self._note_running(task)
        try:
            record = _execute_task(task.config)
        except BaseException as exc:
            with self._lock:
                task.error = exc
                self._resolve(task, state="failed")
        else:
            with self._lock:
                task.record = record
                self._resolve(task, state="done")

    def _note_running(self, task: _Task) -> None:
        if self.journal is not None:
            try:
                self.journal.task_dispatched(
                    task.owner, task.hash, task.attempts
                )
            except Exception:   # a diagnostic record must not kill a lane
                pass
        for handle in self._handles_of(task):
            handle.counters.running += 1

    def _note_stopped(self, task: _Task) -> None:
        """Undo ``_note_running`` for a lost attempt about to be retried."""
        for handle in self._handles_of(task):
            handle.counters.running -= 1

    def _resolve(self, task: _Task, *, state: str) -> None:
        """Finalise a task (caller holds the lock)."""
        was_running = task.state == "running"
        task.state = state
        self._tasks.pop(task.hash, None)
        if state == "done" and task.record is not None:
            self._done[task.hash] = task.record
        for handle in self._handles_of(task):
            if was_running:
                handle.counters.running -= 1
            if state == "done":
                handle.counters.done += 1
        task.done.set()

    def _handles_of(self, task: _Task) -> List[JobHandle]:
        return [
            h for h in self._jobs.values()
            if task.hash in h.owned or task.hash in h.attached
        ]

    # ------------------------------------------------------------------
    # Internal: per-job collection (ordered persistence + events)
    # ------------------------------------------------------------------
    def _collect_job(self, handle: JobHandle) -> None:
        try:
            for h in handle.drain_order:
                task = handle.owned[h]
                task.done.wait()
                if task.error is not None:
                    self._fail_job(handle, task.error)
                    return
                if task.state == "cancelled":
                    continue
                if (
                    task.owner == handle.job_id
                    and self.store is not None
                    and task.record is not None
                ):
                    # Exactly-once, in drain order: this is what keeps the
                    # store byte-identical to the pre-scheduler engine and
                    # resumable after an interrupt.
                    crash_point("kill-after-execute-before-persist")
                    self.store.append([task.record])
                    with self._lock:
                        self.persisted += 1
                    # After the store fsync, so the store is always at
                    # least as new as the journal.
                    if self.journal is not None:
                        self.journal.result_persisted(handle.job_id, h)
                handle._emit("progress")
            for h, task in handle.attached.items():
                task.done.wait()
                if task.error is not None:
                    self._fail_job(handle, task.error)
                    return
                handle._emit("progress")
        except BaseException as exc:      # pragma: no cover - defensive
            self._fail_job(handle, exc)
            return
        with self._lock:
            handle.state = (
                "cancelled"
                if any(t.state == "cancelled" for t in handle.owned.values())
                else "done"
            )
        self._journal_job_done(handle.job_id, handle.state)
        handle.finished.set()
        handle._emit(handle.state)

    def _fail_job(self, handle: JobHandle, error: BaseException) -> None:
        with self._lock:
            handle.state = "failed"
            handle.error = error
        self._journal_job_done(handle.job_id, "failed")
        handle.finished.set()
        handle._emit("failed")

    def _journal_job_done(self, job_id: str, state: str) -> None:
        if self.journal is None:
            return
        try:
            self.journal.job_done(job_id, state)
        except Exception:   # journalling must never mask the job outcome
            pass

    def _cancel_job(self, handle: JobHandle) -> None:
        with self._lock:
            if handle.is_finished:
                return
            shared = set()
            for other in self._jobs.values():
                if other.job_id == handle.job_id:
                    continue
                shared.update(other.owned)
                shared.update(other.attached)
            for task in handle.owned.values():
                if task.state == "queued" and task.hash not in shared:
                    task.cancelled = True

    # ------------------------------------------------------------------
    # Internal: prewarm
    # ------------------------------------------------------------------
    def _prewarm(self, configs: Sequence[RunConfig]) -> None:
        """Load each unique dataset once in the parent and publish it.

        Without this, a cold parallel job has every pool worker miss the
        disk cache simultaneously and regenerate the same synthetic matrix.
        With the shm transport enabled the loaded matrix is additionally
        published into a shared segment, so workers rehydrate it zero-copy
        instead of re-reading (or regenerating) it per task.
        """
        from ..matrices import load_dataset
        from ..matrices.cache import dataset_cache_enabled

        transport = self._ensure_transport()
        if transport is None and not dataset_cache_enabled():
            return
        for dataset, scale in sorted({
            (c.dataset, c.scale) for c in configs if not c.matrix
        }):
            matrix = load_dataset(dataset, scale=scale)
            if transport is not None:
                try:
                    transport.publish((dataset, float(scale)), matrix)
                except Exception:
                    # Out of shm space mid-sweep: later tasks fall back to
                    # the disk cache; never fail the job over an optimisation.
                    with self._lock:
                        self._transport_enabled = False

"""The persistent job journal: a write-ahead log of scheduler intent.

The result store records *outcomes* — one JSONL row per executed config.
It cannot answer the question a restarted service has to ask: *which jobs
were accepted but never finished?*  The journal answers it with a
write-ahead JSONL log beside the store: every record is appended with a
single ``O_APPEND`` ``write(2)``, ``fsync``'d before the scheduler
proceeds, and carries a CRC-32 checksum so replay can tell a torn final
record (a crash mid-append) from a clean one.

Record types (see :class:`JournalJob` for how replay folds them):

``job-submitted`` / ``job-adopted``
    The full job: id, config dicts, priority, budget, force.  Written
    *before* any task is dispatched, so an accepted job is always
    recoverable.
``task-dispatched``
    A task attempt started (``hash``, ``attempt``) — diagnostic, and the
    basis for attempt accounting across a crash.
``result-persisted``
    The store append for ``hash`` completed.  Written *after* the store
    ``fsync``, so the store is always at least as new as the journal:
    recovery treats journal-persisted hashes as done and re-checks the
    store for the (at most one) record that landed in the crash window.
``job-done``
    Terminal state (``done``/``failed``/``cancelled``).  A job with no
    ``job-done`` record is *interrupted* and gets re-adopted on restart.

Torn-write tolerance: :meth:`Journal.replay` validates every line's JSON
*and* checksum; a trailing run of invalid bytes — the only corruption a
crash mid-append can produce — is truncated off the file and replay
continues from the clean prefix.  Invalid bytes *followed by* valid
records mean real corruption and raise :class:`JournalCorrupt`.
"""

from __future__ import annotations

import json
import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Set, Union

from .faults import torn_write_point

__all__ = [
    "Journal",
    "JournalCorrupt",
    "JournalJob",
    "JOURNAL_FILENAME",
]

#: the journal file inside a ``--journal DIR`` directory
JOURNAL_FILENAME = "journal.jsonl"


class JournalCorrupt(RuntimeError):
    """The journal has invalid records *before* valid ones — not a torn
    tail but real corruption; refusing to guess beats replaying lies."""


def _encode(record: Dict[str, object]) -> bytes:
    """One checksummed JSONL line for ``record``."""
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    line = json.dumps(
        {"crc": zlib.crc32(body.encode("utf-8")), "rec": record},
        sort_keys=True,
        separators=(",", ":"),
    )
    return (line + "\n").encode("utf-8")


def _decode(line: bytes) -> Optional[Dict[str, object]]:
    """The record of one line, or ``None`` for torn/invalid bytes."""
    try:
        outer = json.loads(line.decode("utf-8"))
        record = outer["rec"]
        crc = int(outer["crc"])
    except (ValueError, KeyError, TypeError, UnicodeDecodeError):
        return None
    body = json.dumps(record, sort_keys=True, separators=(",", ":"))
    if zlib.crc32(body.encode("utf-8")) != crc:
        return None
    if not isinstance(record, dict) or "type" not in record:
        return None
    return record


@dataclass
class JournalJob:
    """Replayed per-job state (what the scheduler knew before the crash)."""

    job_id: str
    configs: List[Dict[str, object]] = field(default_factory=list)
    priority: int = 0
    budget: Optional[int] = None
    force: bool = False
    #: hashes with at least one dispatched attempt
    dispatched: Set[str] = field(default_factory=set)
    #: hashes whose store append completed
    persisted: Set[str] = field(default_factory=set)
    #: dispatch attempts per hash (crash-surviving retry accounting)
    attempts: Dict[str, int] = field(default_factory=dict)
    state: str = "running"          # running | done | failed | cancelled

    @property
    def interrupted(self) -> bool:
        return self.state == "running"


class Journal:
    """Append-only, checksummed, fsync'd JSONL journal in a directory."""

    def __init__(self, directory: Union[str, Path]):
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_FILENAME

    def exists(self) -> bool:
        return self.path.is_file()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    def append(self, type_: str, **fields) -> None:
        """Durably append one record: single ``O_APPEND`` write + fsync.

        Hosts the ``torn-journal-write`` fault point: when it fires, half
        the payload is written (and fsync'd) and the process exits — the
        exact state a crash mid-append leaves behind.
        """
        record = {"type": type_, **fields}
        payload = _encode(record)
        payload, torn = torn_write_point("torn-journal-write", payload)
        self.directory.mkdir(parents=True, exist_ok=True)
        fd = os.open(
            str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            view = memoryview(payload)
            while view:
                written = os.write(fd, view)
                view = view[written:]
            os.fsync(fd)
        finally:
            os.close(fd)
        if torn:
            from .faults import _crash

            _crash()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def replay(self, *, truncate: bool = True) -> List[Dict[str, object]]:
        """All valid records, tolerating a torn tail.

        A trailing run of invalid bytes is dropped — and, with
        ``truncate=True`` (the default), physically truncated off the file
        so later appends cannot splice onto torn bytes.  Invalid records
        *followed by* valid ones raise :class:`JournalCorrupt`.
        """
        if not self.path.is_file():
            return []
        raw = self.path.read_bytes()
        records: List[Dict[str, object]] = []
        pos = 0
        clean_end = 0               # offset just past the last valid record
        bad_at: Optional[int] = None
        while pos < len(raw):
            nl = raw.find(b"\n", pos)
            end = len(raw) if nl == -1 else nl
            line = raw[pos:end]
            complete = nl != -1
            if line.strip():
                record = _decode(line) if complete else None
                if record is None:
                    if bad_at is None:
                        bad_at = pos
                else:
                    if bad_at is not None:
                        raise JournalCorrupt(
                            f"{self.path}: invalid record at byte {bad_at} "
                            "is followed by valid records (not a torn tail)"
                        )
                    records.append(record)
                    clean_end = end + 1
            elif bad_at is None:
                clean_end = end + (1 if complete else 0)
            if not complete:
                break
            pos = nl + 1
        clean_end = min(clean_end, len(raw))
        if truncate and clean_end < len(raw):
            os.truncate(str(self.path), clean_end)
        return records

    def recover(self, *, truncate: bool = True) -> Dict[str, JournalJob]:
        """Fold the replayed records into per-job state, submission order."""
        jobs: Dict[str, JournalJob] = {}
        for record in self.replay(truncate=truncate):
            type_ = record.get("type")
            job_id = record.get("job_id")
            if not isinstance(job_id, str):
                continue
            if type_ in ("job-submitted", "job-adopted"):
                job = jobs.get(job_id)
                if job is None:
                    job = JournalJob(job_id=job_id)
                    jobs[job_id] = job
                job.configs = list(record.get("configs") or [])
                job.priority = int(record.get("priority") or 0)
                budget = record.get("budget")
                job.budget = None if budget is None else int(budget)
                job.force = bool(record.get("force", False))
                job.state = "running"   # an adoption re-opens the job
                continue
            job = jobs.get(job_id)
            if job is None:
                continue                # records of a compacted/foreign job
            if type_ == "task-dispatched":
                h = record.get("hash")
                if isinstance(h, str):
                    job.dispatched.add(h)
                    job.attempts[h] = max(
                        job.attempts.get(h, 0), int(record.get("attempt") or 1)
                    )
            elif type_ == "result-persisted":
                h = record.get("hash")
                if isinstance(h, str):
                    job.persisted.add(h)
            elif type_ == "job-done":
                job.state = str(record.get("state") or "done")
        return jobs

    def interrupted_jobs(self, *, truncate: bool = True) -> List[JournalJob]:
        """Jobs submitted (or adopted) but never finished, in order."""
        return [j for j in self.recover(truncate=truncate).values() if j.interrupted]

    # ------------------------------------------------------------------
    # Scheduler-facing convenience writers
    # ------------------------------------------------------------------
    def job_submitted(self, job, *, adopted: bool = False) -> None:
        self.append(
            "job-adopted" if adopted else "job-submitted",
            job_id=job.job_id,
            configs=[c.as_dict() for c in job.configs],
            priority=job.priority,
            budget=job.budget,
            force=job.force,
        )

    def task_dispatched(self, job_id: str, hash_: str, attempt: int) -> None:
        self.append("task-dispatched", job_id=job_id, hash=hash_, attempt=attempt)

    def result_persisted(self, job_id: str, hash_: str) -> None:
        self.append("result-persisted", job_id=job_id, hash=hash_)

    def job_done(self, job_id: str, state: str) -> None:
        self.append("job-done", job_id=job_id, state=state)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Journal({str(self.directory)!r})"

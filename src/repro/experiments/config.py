"""Declarative experiment configurations and grids.

The paper's evaluation is a family of sweeps — strong scaling (Figs 8, 9,
11), MPI×OpenMP configurations (Fig 7), block-split counts (Fig 6),
permutation strategies (Figs 4, 5), AMG restriction products (Table III,
Figs 10–12) and batched betweenness centrality (Figs 13–14).  Every point
of every sweep is one :class:`RunConfig`: a frozen, hashable record of
*everything* that determines an experiment's outcome, including which
**workload** runs (``squaring``, ``amg-restriction``, ``bc`` — see
:mod:`repro.experiments.workloads`) and the workload-specific parameters
(AMG phase and MIS-2 seed, BC source selection and batching).  A
:class:`ExperimentGrid` is the cartesian product the figures iterate over,
expanded into ``RunConfig`` records in a deterministic order so two
expansions of the same grid always produce the same run list (and
therefore the same JSONL, byte for byte).

``RunConfig.config_hash()`` is the cache key of the experiment engine: it
digests the canonical JSON form of the config plus a schema-version salt,
so records written by an incompatible engine version are never mistaken
for cache hits.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence

from ..runtime import LAPTOP, PERLMUTTER, ZERO_COST, CostModel

__all__ = ["COST_MODELS", "RunConfig", "ExperimentGrid", "resolve_cost_model"]

#: bump when the record schema or the modelled-cost semantics change, so
#: stale JSONL caches miss instead of silently serving incompatible rows
#: (2: multi-workload engine — workload axis + AMG/BC parameters)
SCHEMA_VERSION = 2

#: named machine models a config can reference (configs must stay
#: JSON-serialisable, so they carry the name, not the CostModel object)
COST_MODELS: Dict[str, CostModel] = {
    "perlmutter": PERLMUTTER,
    "laptop": LAPTOP,
    "zero-cost": ZERO_COST,
}


#: post-v2 config fields elided from the canonical JSON at their default
#: value, keeping pre-existing config hashes (and record caches) stable
#: (PR4 added resident/square_k; PR5 added the triangles/mcl parameters)
_ELIDE_AT_DEFAULT: Dict[str, object] = {
    "resident": False,
    "square_k": None,
    "mask_mode": None,
    "mcl_inflation": None,
    "mcl_prune": None,
    "mcl_max_iters": None,
    # PR6: execution backend; "simulated" is the pre-PR6 behaviour, so
    # every pre-PR6 hash (and BENCH overlap) stays stable
    "backend": "simulated",
}

#: explicit values that are behaviourally identical to a field's default
#: (the executor resolves ``None`` to them), normalised to the default
#: before elision so equivalent configs share one hash — an explicit
#: ``mask_mode="late"`` must not cache-miss against an unset one
_HASH_EQUIVALENT_TO_DEFAULT: Dict[str, tuple] = {"mask_mode": ("late",)}


def resolve_cost_model(name: str) -> CostModel:
    """Look up a named cost model (the machines configs can reference)."""
    if name not in COST_MODELS:
        raise ValueError(
            f"unknown cost model {name!r}; available: {sorted(COST_MODELS)}"
        )
    return COST_MODELS[name]


@dataclass(frozen=True)
class RunConfig:
    """One fully-specified experiment (one point of a sweep).

    Every field that can change the produced record is here; nothing else
    is.  The engine derives the cache key from these fields alone, which is
    what makes records reusable across processes, sessions and machines.
    The ``workload`` field selects which application runs (squaring, the
    AMG restriction triple product, batched betweenness centrality); the
    ``amg_*``/``mis_seed``/``right_algorithm``/``bc_*`` fields parameterise
    the non-squaring workloads and are ignored by ``squaring``.
    """

    #: built-in dataset analogue name (or a label when ``matrix`` is set)
    dataset: str
    algorithm: str = "1d"
    strategy: str = "none"
    nprocs: int = 16
    block_split: int = 2048
    #: permutation / partitioner seed
    seed: int = 0
    #: dataset generator scale factor
    scale: float = 0.5
    #: 3D layer count (None lets the algorithm pick)
    layers: Optional[int] = None
    #: OpenMP threads per process (None keeps the cost model's default)
    threads: Optional[int] = None
    #: named machine model (key of :data:`COST_MODELS`)
    cost_model: str = "perlmutter"
    #: optional MatrixMarket path overriding the built-in dataset
    matrix: Optional[str] = None
    #: which application runs: "squaring", "amg-restriction" or "bc"
    workload: str = "squaring"
    #: AMG phase: "rta" (RᵀA only) or "rtar" (RᵀA then (RᵀA)·R);
    #: None means "rtar" for the amg-restriction workload
    amg_phase: Optional[str] = None
    #: seed of the MIS-2 aggregation building the restriction operator
    mis_seed: int = 0
    #: algorithm of the AMG right multiplication (None → "outer-product")
    right_algorithm: Optional[str] = None
    #: number of BC source vertices (required for the bc workload)
    bc_sources: Optional[int] = None
    #: BC batch size (None → all sources in one batch)
    bc_batch: Optional[int] = None
    #: deterministic source selection: vertex ids 0, s, 2s, … (None → the
    #: sources are sampled uniformly at random with ``seed``)
    bc_source_stride: Optional[int] = None
    #: treat the adjacency matrix as directed
    bc_directed: bool = False
    #: run iterative workloads (bc) on one run-wide cluster with resident
    #: operands: A's distribution + window setup charged once per run
    #: instead of once per iteration (chained-squaring is always resident)
    resident: bool = False
    #: chained-squaring workload: number of squarings (final product A^(2^k))
    square_k: Optional[int] = None
    #: triangles workload: "late" (post-kernel mask filter, any driver) or
    #: "early" (1D only: the RDMA fetch plan is pruned against the mask's
    #: column support); None means "late"
    mask_mode: Optional[str] = None
    #: mcl workload: inflation exponent r (None → 2.0)
    mcl_inflation: Optional[float] = None
    #: mcl workload: pruning threshold (None → 1e-3)
    mcl_prune: Optional[float] = None
    #: mcl workload: iteration cap (None → 30)
    mcl_max_iters: Optional[int] = None
    #: execution backend: "simulated" (modelled-only, the default) or
    #: "shm" (real shared-memory transfers + a measured ledger); see
    #: :mod:`repro.runtime.backend`
    backend: str = "simulated"

    def as_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunConfig":
        known = {f for f in cls.__dataclass_fields__}
        return cls(**{k: v for k, v in data.items() if k in known})

    def canonical_json(self) -> str:
        """Canonical (sorted-key, compact) JSON form — the hash input.

        Fields added *after* schema v2 shipped (see
        :data:`_ELIDE_AT_DEFAULT`) drop out of the canonical form while they
        hold their default value, so every pre-existing config keeps its
        pre-existing hash: old record stores stay valid caches and
        ``BENCH_PRn.json`` snapshots remain comparable across PRs.  A
        non-default value enters the JSON and discriminates the hash as
        usual.
        """
        data = self.as_dict()
        for key, equivalents in _HASH_EQUIVALENT_TO_DEFAULT.items():
            if data.get(key) in equivalents:
                data[key] = _ELIDE_AT_DEFAULT[key]
        for key, default in _ELIDE_AT_DEFAULT.items():
            if data.get(key) == default:
                data.pop(key, None)
        return json.dumps(data, sort_keys=True, separators=(",", ":"))

    def _matrix_fingerprint(self) -> str:
        """Staleness component for ``matrix``-file configs.

        The path alone would keep serving stale cache hits after the file
        is regenerated with different contents, so the file's size and
        mtime enter the hash.  This makes matrix-path hashes machine-local
        — unlike dataset-name configs, whose records stay comparable
        across machines.
        """
        if not self.matrix:
            return ""
        try:
            stat = os.stat(self.matrix)
        except OSError:
            return "|matrix:missing"
        return f"|matrix:{stat.st_size}:{stat.st_mtime_ns}"

    def config_hash(self) -> str:
        """Stable 16-hex-digit cache key for this configuration.

        The digest covers *every* field — including workload parameters the
        selected workload ignores (e.g. ``bc_sources`` on a squaring
        config).  That can over-discriminate (two configs that would run
        identically hash apart and both execute), but it can never serve a
        wrong record, and it keeps the hash a pure function of the config's
        canonical JSON.
        """
        payload = f"v{SCHEMA_VERSION}:{self.canonical_json()}{self._matrix_fingerprint()}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def with_updates(self, **changes) -> "RunConfig":
        return replace(self, **changes)


@dataclass(frozen=True)
class ExperimentGrid:
    """A declarative sweep: the cartesian product of experiment axes.

    ``expand()`` iterates the axes in the declared order (datasets
    outermost, seeds innermost), so the run list — and any JSONL produced
    from it — is deterministic for a given grid.  ``workloads`` is a full
    grid axis; the workload-specific parameters (``amg_phase``,
    ``mis_seed``, ``right_algorithm``, ``bc_*``) are scalar across the grid
    and simply ride along on every config (the squaring workload ignores
    them).  The post-v2 axes (``resident``, ``square_k``, ``mask_mode``,
    ``mcl_*``) are applied only to the workloads that read them (``bc``,
    ``chained-squaring``, ``triangles`` and ``mcl`` respectively), so a
    mixed-workload grid never perturbs the hashes of configs the axis does
    not affect.
    """

    datasets: Sequence[str]
    workloads: Sequence[str] = ("squaring",)
    algorithms: Sequence[str] = ("1d",)
    strategies: Sequence[str] = ("none",)
    process_counts: Sequence[int] = (16,)
    block_splits: Sequence[int] = (2048,)
    seeds: Sequence[int] = (0,)
    layer_counts: Sequence[Optional[int]] = (None,)
    thread_counts: Sequence[Optional[int]] = (None,)
    scale: float = 0.5
    cost_model: str = "perlmutter"
    amg_phase: Optional[str] = None
    mis_seed: int = 0
    right_algorithm: Optional[str] = None
    bc_sources: Optional[int] = None
    bc_batch: Optional[int] = None
    bc_source_stride: Optional[int] = None
    bc_directed: bool = False
    resident: bool = False
    square_k: Optional[int] = None
    mask_mode: Optional[str] = None
    mcl_inflation: Optional[float] = None
    mcl_prune: Optional[float] = None
    mcl_max_iters: Optional[int] = None
    #: execution backends to run every config on (a full product axis —
    #: unlike the workload-specific parameters, every workload reads it)
    backends: Sequence[str] = ("simulated",)

    def expand(self) -> List[RunConfig]:
        configs = []
        for (dataset, workload, backend, algorithm, strategy, nprocs,
             block_split, layers, threads, seed) in (
            itertools.product(
                self.datasets,
                self.workloads,
                self.backends,
                self.algorithms,
                self.strategies,
                self.process_counts,
                self.block_splits,
                self.layer_counts,
                self.thread_counts,
                self.seeds,
            )
        ):
            configs.append(
                RunConfig(
                    dataset=dataset,
                    algorithm=algorithm,
                    strategy=strategy,
                    nprocs=int(nprocs),
                    block_split=int(block_split),
                    seed=int(seed),
                    scale=float(self.scale),
                    layers=layers,
                    threads=threads,
                    cost_model=self.cost_model,
                    workload=workload,
                    amg_phase=self.amg_phase,
                    mis_seed=self.mis_seed,
                    right_algorithm=self.right_algorithm,
                    bc_sources=self.bc_sources,
                    bc_batch=self.bc_batch,
                    bc_source_stride=self.bc_source_stride,
                    bc_directed=self.bc_directed,
                    # The post-v2 axes land only on the workloads that read
                    # them: stamping them grid-wide would push non-default
                    # values into the hashes of configs whose executors
                    # ignore the field, breaking cache reuse and the
                    # cross-PR BENCH overlap for mixed-workload grids.
                    resident=self.resident if workload == "bc" else False,
                    square_k=(
                        self.square_k if workload == "chained-squaring" else None
                    ),
                    mask_mode=self.mask_mode if workload == "triangles" else None,
                    mcl_inflation=(
                        self.mcl_inflation if workload == "mcl" else None
                    ),
                    mcl_prune=self.mcl_prune if workload == "mcl" else None,
                    mcl_max_iters=(
                        self.mcl_max_iters if workload == "mcl" else None
                    ),
                    backend=backend,
                )
            )
        return configs

    def __iter__(self) -> Iterator[RunConfig]:
        return iter(self.expand())

    def __len__(self) -> int:
        return (
            len(self.datasets)
            * len(self.workloads)
            * len(self.backends)
            * len(self.algorithms)
            * len(self.strategies)
            * len(self.process_counts)
            * len(self.block_splits)
            * len(self.layer_counts)
            * len(self.thread_counts)
            * len(self.seeds)
        )

"""Deterministic result records produced by the experiment engine.

A :class:`RunRecord` holds everything a figure needs from one experiment —
modelled times, communication volumes, message counts, CV/memA,
conservation status, per-rank breakdowns — and *only* modelled
(deterministic) quantities, with one explicitly-marked exception: records
produced on a non-simulated backend additionally carry a
:class:`MeasuredStats` block of physically-measured wall-clock and byte
counts, tagged with the machine that produced it.  Simulated-backend
records never carry the block, so serial and parallel execution of the
same simulated grid produce byte-identical JSONL, and a cached record is
indistinguishable from a fresh run.  Measured fields are machine-local and
excluded from cross-PR comparison (see ``benchmarks/compare_trajectories``
and ``docs/accounting.md``).

The operand plane (shared-memory dataset transport, per-worker resident
operand caches, affinity routing — see ``experiments/scheduler``) is
host-side machinery only: residency hit/miss/eviction/steal counters live
in :class:`~repro.experiments.engine.SweepStats` and scheduler ``stats()``
snapshots, never inside a record.  Whether an operand was rehydrated from
shm, served from a worker's resident cache, or rebuilt from disk must not
— and does not — change a single byte of the persisted JSONL.

Non-squaring workloads attach their own result structures: the AMG
restriction workload records per-phase (RᵀA vs (RᵀA)·R) times/volumes and
the coarsening statistics of the MIS-2 restriction operator
(:class:`AMGStats`, Table III / Figs 10–12); the BC workload records the
per-iteration forward-search / backward-sweep series the paper plots in
Figs 13–14 (:class:`BCStats`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .config import RunConfig

__all__ = [
    "AMGStats",
    "BCIterationStats",
    "BCStats",
    "ChainLevelStats",
    "ChainStats",
    "MCLIterationStats",
    "MCLStats",
    "MeasuredPhaseStats",
    "MeasuredStats",
    "TriangleStats",
    "RunRecord",
]


@dataclass
class MeasuredPhaseStats:
    """Measured counters of one phase on a real-transfer backend."""

    phase: str
    #: wall-clock seconds of the whole phase block (driver code included)
    wall_seconds: float
    #: seconds spent inside shared-memory round trips
    transfer_seconds: float
    #: bytes physically received out of shared memory in this phase
    bytes: int
    #: number of physical transfers
    transfers: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "phase": self.phase,
            "wall_seconds": self.wall_seconds,
            "transfer_seconds": self.transfer_seconds,
            "bytes": self.bytes,
            "transfers": self.transfers,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MeasuredPhaseStats":
        return cls(
            phase=str(data["phase"]),
            wall_seconds=float(data["wall_seconds"]),
            transfer_seconds=float(data["transfer_seconds"]),
            bytes=int(data["bytes"]),
            transfers=int(data["transfers"]),
        )


@dataclass
class MeasuredStats:
    """Physically-measured counters of one run on a non-simulated backend.

    Everything here is **machine-local** (wall clock, pickle wire sizes,
    the host tag) and therefore excluded from cross-PR and cross-machine
    comparison — unlike the modelled fields of the enclosing record, which
    stay bit-identical across backends and machines.
    """

    #: backend that produced the measurement ("shm", ...)
    backend: str
    #: wall-clock seconds summed over all phases
    wall_seconds: float
    #: seconds spent inside physical transfers
    transfer_seconds: float
    #: bytes physically pushed into / received out of shared memory
    bytes_sent: int
    bytes_received: int
    #: number of physical transfers
    transfers: int
    #: did every phase balance physically-sent against physically-received?
    conserved: bool
    #: host/platform/python tag of the measuring machine
    machine: Dict[str, str] = field(default_factory=dict)
    #: per-phase breakdown, in execution order
    phases: List[MeasuredPhaseStats] = field(default_factory=list)

    @classmethod
    def from_ledger(
        cls, ledger, backend: str, machine: Optional[Dict[str, str]] = None
    ) -> "MeasuredStats":
        """Summarise a :class:`~repro.runtime.shm.MeasuredLedger`."""
        summary = ledger.to_dict()
        return cls(
            backend=backend,
            wall_seconds=float(summary["wall_seconds"]),
            transfer_seconds=float(summary["transfer_seconds"]),
            bytes_sent=int(summary["bytes_sent"]),
            bytes_received=int(summary["bytes_received"]),
            transfers=int(summary["transfers"]),
            conserved=bool(summary["conserved"]),
            machine=dict(machine or {}),
            phases=[
                MeasuredPhaseStats(
                    phase=str(ph["phase"]),
                    wall_seconds=float(ph["wall_seconds"]),
                    transfer_seconds=float(ph["transfer_seconds"]),
                    bytes=int(ph["bytes"]),
                    transfers=int(ph["transfers"]),
                )
                for ph in summary["phases"]
            ],
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "backend": self.backend,
            "wall_seconds": self.wall_seconds,
            "transfer_seconds": self.transfer_seconds,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "transfers": self.transfers,
            "conserved": self.conserved,
            "machine": self.machine,
            "phases": [ph.to_dict() for ph in self.phases],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MeasuredStats":
        return cls(
            backend=str(data["backend"]),
            wall_seconds=float(data["wall_seconds"]),
            transfer_seconds=float(data["transfer_seconds"]),
            bytes_sent=int(data["bytes_sent"]),
            bytes_received=int(data["bytes_received"]),
            transfers=int(data["transfers"]),
            conserved=bool(data["conserved"]),
            machine={str(k): str(v) for k, v in (data.get("machine") or {}).items()},
            phases=[
                MeasuredPhaseStats.from_dict(ph) for ph in data.get("phases", [])
            ],
        )


@dataclass
class TriangleStats:
    """Extras of one triangle-counting record (triangles workload only)."""

    #: exact triangle count (== the scipy reference, asserted at run time)
    triangles: int
    #: nnz of the strictly lower-triangular operand/mask L
    l_nnz: int
    #: nnz of the masked product (L·L) ⊙ L
    masked_nnz: int
    #: mask mode actually used: "late" or "early"
    mask_mode: str
    #: did the distributed count match the local scipy reference?
    reference_match: bool = True

    def to_dict(self) -> Dict[str, object]:
        return {
            "triangles": self.triangles,
            "l_nnz": self.l_nnz,
            "masked_nnz": self.masked_nnz,
            "mask_mode": self.mask_mode,
            "reference_match": self.reference_match,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TriangleStats":
        return cls(
            triangles=int(data["triangles"]),
            l_nnz=int(data["l_nnz"]),
            masked_nnz=int(data["masked_nnz"]),
            mask_mode=str(data["mask_mode"]),
            reference_match=bool(data.get("reference_match", True)),
        )


@dataclass
class MCLIterationStats:
    """One phase of one MCL iteration (expand / inflate / prune / converge)."""

    phase: str
    iteration: int
    #: modelled seconds / bytes received / messages of the phase
    time: float
    volume: int
    messages: int
    #: stored entries of the iterate after the phase
    nnz: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "phase": self.phase,
            "iteration": self.iteration,
            "time": self.time,
            "volume": self.volume,
            "messages": self.messages,
            "nnz": self.nnz,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MCLIterationStats":
        return cls(
            phase=str(data["phase"]),
            iteration=int(data["iteration"]),
            time=float(data["time"]),
            volume=int(data["volume"]),
            messages=int(data["messages"]),
            nnz=int(data["nnz"]),
        )


@dataclass
class MCLStats:
    """Per-iteration telemetry of one Markov-clustering run."""

    #: inflation exponent and pruning threshold actually used
    inflation: float
    prune_threshold: float
    #: executed iterations and whether chaos reached the convergence bound
    n_iterations: int
    converged: bool
    #: chaos after the last iteration and nnz / cluster count of the result
    final_chaos: float
    final_nnz: int
    n_clusters: int
    #: the per-phase iteration series, in execution order
    iterations: List[MCLIterationStats] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "inflation": self.inflation,
            "prune_threshold": self.prune_threshold,
            "n_iterations": self.n_iterations,
            "converged": self.converged,
            "final_chaos": self.final_chaos,
            "final_nnz": self.final_nnz,
            "n_clusters": self.n_clusters,
            "iterations": [it.to_dict() for it in self.iterations],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MCLStats":
        return cls(
            inflation=float(data["inflation"]),
            prune_threshold=float(data["prune_threshold"]),
            n_iterations=int(data["n_iterations"]),
            converged=bool(data["converged"]),
            final_chaos=float(data["final_chaos"]),
            final_nnz=int(data["final_nnz"]),
            n_clusters=int(data["n_clusters"]),
            iterations=[
                MCLIterationStats.from_dict(it) for it in data.get("iterations", [])
            ],
        )


@dataclass
class ChainLevelStats:
    """One squaring level of a chained-squaring run (``A^(2^(level+1))``)."""

    level: int
    #: modelled seconds / bytes received / messages of this level's SpGEMM
    time: float
    volume: int
    messages: int
    #: nnz of this level's product (computed without global assembly)
    output_nnz: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "time": self.time,
            "volume": self.volume,
            "messages": self.messages,
            "output_nnz": self.output_nnz,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChainLevelStats":
        return cls(
            level=int(data["level"]),
            time=float(data["time"]),
            volume=int(data["volume"]),
            messages=int(data["messages"]),
            output_nnz=int(data["output_nnz"]),
        )


@dataclass
class ChainStats:
    """Per-level telemetry of one chained-squaring (``A^(2^k)``) run."""

    #: number of squarings (the final product is A^(2^k))
    k: int
    #: nnz of the final product
    final_nnz: int
    #: one entry per squaring level, in execution order
    levels: List[ChainLevelStats] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "k": self.k,
            "final_nnz": self.final_nnz,
            "levels": [lvl.to_dict() for lvl in self.levels],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChainStats":
        return cls(
            k=int(data["k"]),
            final_nnz=int(data["final_nnz"]),
            levels=[ChainLevelStats.from_dict(lvl) for lvl in data.get("levels", [])],
        )


@dataclass
class AMGStats:
    """Coarsening and per-phase statistics of one AMG restriction run.

    The ``right_*`` fields are zero when the config's ``amg_phase`` is
    ``"rta"`` (the left multiplication is the whole run).
    """

    #: fine / coarse grid sizes of the MIS-2 restriction operator
    n_fine: int
    n_coarse: int
    #: nnz(R) — exactly ``n_fine`` for the tentative piecewise-constant R
    r_nnz: int
    #: n_fine / n_coarse (Table III's coarsening factor)
    coarsening_factor: float
    #: nnz of the intermediate product RᵀA
    rta_nnz: int
    #: modelled seconds / bytes received / messages of the RᵀA SpGEMM
    left_time: float
    left_volume: int
    left_messages: int
    #: same for the (RᵀA)·R SpGEMM (zero in phase "rta")
    right_time: float = 0.0
    right_volume: int = 0
    right_messages: int = 0
    #: nnz of the coarse operator RᵀAR (zero in phase "rta")
    coarse_nnz: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "n_fine": self.n_fine,
            "n_coarse": self.n_coarse,
            "r_nnz": self.r_nnz,
            "coarsening_factor": self.coarsening_factor,
            "rta_nnz": self.rta_nnz,
            "left_time": self.left_time,
            "left_volume": self.left_volume,
            "left_messages": self.left_messages,
            "right_time": self.right_time,
            "right_volume": self.right_volume,
            "right_messages": self.right_messages,
            "coarse_nnz": self.coarse_nnz,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "AMGStats":
        return cls(
            n_fine=int(data["n_fine"]),
            n_coarse=int(data["n_coarse"]),
            r_nnz=int(data["r_nnz"]),
            coarsening_factor=float(data["coarsening_factor"]),
            rta_nnz=int(data["rta_nnz"]),
            left_time=float(data["left_time"]),
            left_volume=int(data["left_volume"]),
            left_messages=int(data["left_messages"]),
            right_time=float(data.get("right_time", 0.0)),
            right_volume=int(data.get("right_volume", 0)),
            right_messages=int(data.get("right_messages", 0)),
            coarse_nnz=int(data.get("coarse_nnz", 0)),
        )


@dataclass
class BCIterationStats:
    """One SpGEMM iteration of the BC forward search or backward sweep."""

    phase: str          # "forward" or "backward"
    iteration: int
    #: modelled seconds of the distributed SpGEMM (0 in local mode)
    time: float
    #: bytes received during the iteration's SpGEMM
    volume: int
    messages: int
    frontier_nnz: int

    def to_dict(self) -> Dict[str, object]:
        return {
            "phase": self.phase,
            "iteration": self.iteration,
            "time": self.time,
            "volume": self.volume,
            "messages": self.messages,
            "frontier_nnz": self.frontier_nnz,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BCIterationStats":
        return cls(
            phase=str(data["phase"]),
            iteration=int(data["iteration"]),
            time=float(data["time"]),
            volume=int(data["volume"]),
            messages=int(data["messages"]),
            frontier_nnz=int(data["frontier_nnz"]),
        )


@dataclass
class BCStats:
    """Per-iteration telemetry of one batched betweenness-centrality run."""

    #: number of source vertices and batches actually processed
    sources: int
    batches: int
    #: modelled seconds summed over the forward / backward iterations
    forward_time: float
    backward_time: float
    #: bytes received summed over the forward / backward iterations
    forward_volume: int
    backward_volume: int
    #: the Fig 13/14 series: one entry per SpGEMM iteration
    iterations: List[BCIterationStats] = field(default_factory=list)
    #: hoisted one-off setup cost of a resident run (0 for legacy runs);
    #: with these, setup + forward + backward reconciles with the record's
    #: topline elapsed_time / communication_volume
    setup_time: float = 0.0
    setup_volume: int = 0

    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "sources": self.sources,
            "batches": self.batches,
            "forward_time": self.forward_time,
            "backward_time": self.backward_time,
            "forward_volume": self.forward_volume,
            "backward_volume": self.backward_volume,
            "iterations": [it.to_dict() for it in self.iterations],
        }
        # Only resident runs carry setup keys, so legacy bc JSONL rows stay
        # byte-identical to their pre-resident form.
        if self.setup_time or self.setup_volume:
            out["setup_time"] = self.setup_time
            out["setup_volume"] = self.setup_volume
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "BCStats":
        return cls(
            sources=int(data["sources"]),
            batches=int(data["batches"]),
            forward_time=float(data["forward_time"]),
            backward_time=float(data["backward_time"]),
            forward_volume=int(data["forward_volume"]),
            backward_volume=int(data["backward_volume"]),
            iterations=[
                BCIterationStats.from_dict(it) for it in data.get("iterations", [])
            ],
            setup_time=float(data.get("setup_time", 0.0)),
            setup_volume=int(data.get("setup_volume", 0)),
        )


@dataclass
class RunRecord:
    """The persisted outcome of executing one :class:`RunConfig`.

    Units: ``*_time`` fields are modelled **seconds** (Σ over phases of the
    slowest rank), ``communication_volume``/``permutation_bytes`` are
    **bytes**, counts are event counts, ``output_nnz`` is stored entries.
    ``conserved`` records whether every ledger phase satisfied
    ``bytes_sent == bytes_received`` — the invariant every workload is
    expected to uphold.
    """

    #: the configuration that produced this record
    config: RunConfig
    #: cache key (``config.config_hash()`` at execution time)
    config_hash: str
    #: canonical algorithm name the registry resolved to
    algorithm: str
    #: modelled elapsed seconds (Σ over phases of the slowest rank)
    elapsed_time: float
    comm_time: float
    comp_time: float
    other_time: float
    #: total bytes received across all ranks and phases
    communication_volume: int
    message_count: int
    rdma_gets: int
    load_imbalance: float
    cv_over_mema: float
    #: modelled permutation/redistribution seconds (deterministic)
    permutation_seconds: float
    permutation_bytes: int
    output_nnz: int
    #: did every phase's ledger satisfy bytes_sent == bytes_received?
    conserved: bool
    #: per-rank modelled seconds by category (the Fig 8 stacked bars);
    #: empty for the bc workload (each iteration runs on its own cluster)
    per_rank_comm: List[float] = field(default_factory=list)
    per_rank_comp: List[float] = field(default_factory=list)
    per_rank_other: List[float] = field(default_factory=list)
    #: which workload produced this record (mirrors ``config.workload``)
    workload: str = "squaring"
    #: AMG restriction extras (amg-restriction workload only)
    amg: Optional[AMGStats] = None
    #: BC per-iteration series (bc workload only)
    bc: Optional[BCStats] = None
    #: per-level series of a chained-squaring run (chained-squaring only)
    chain: Optional[ChainStats] = None
    #: triangle-counting extras (triangles workload only)
    triangles: Optional[TriangleStats] = None
    #: Markov-clustering per-iteration series (mcl workload only)
    mcl: Optional[MCLStats] = None
    #: physically-measured counters (non-simulated backends only);
    #: machine-tagged and excluded from cross-PR comparison
    measured: Optional[MeasuredStats] = None

    @property
    def total_time_with_permutation(self) -> float:
        """Kernel time plus the (amortised-once) permutation cost."""
        return self.elapsed_time + self.permutation_seconds

    @property
    def per_rank_total(self) -> List[float]:
        """Per-rank total modelled seconds (load-imbalance bar chart input)."""
        return [
            c + p + o
            for c, p, o in zip(self.per_rank_comm, self.per_rank_comp, self.per_rank_other)
        ]

    # ------------------------------------------------------------------
    # JSON round-trip (one JSONL line per record)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        out: Dict[str, object] = {
            "config_hash": self.config_hash,
            "config": self.config.as_dict(),
            "workload": self.workload,
            "algorithm": self.algorithm,
            "elapsed_time": self.elapsed_time,
            "comm_time": self.comm_time,
            "comp_time": self.comp_time,
            "other_time": self.other_time,
            "communication_volume": self.communication_volume,
            "message_count": self.message_count,
            "rdma_gets": self.rdma_gets,
            "load_imbalance": self.load_imbalance,
            "cv_over_mema": self.cv_over_mema,
            "permutation_seconds": self.permutation_seconds,
            "permutation_bytes": self.permutation_bytes,
            "output_nnz": self.output_nnz,
            "conserved": self.conserved,
            "per_rank_comm": self.per_rank_comm,
            "per_rank_comp": self.per_rank_comp,
            "per_rank_other": self.per_rank_other,
        }
        # Workload extras only appear on the workloads that produce them, so
        # squaring JSONL rows stay exactly as lean as before.
        if self.amg is not None:
            out["amg"] = self.amg.to_dict()
        if self.bc is not None:
            out["bc"] = self.bc.to_dict()
        if self.chain is not None:
            out["chain"] = self.chain.to_dict()
        if self.triangles is not None:
            out["triangles"] = self.triangles.to_dict()
        if self.mcl is not None:
            out["mcl"] = self.mcl.to_dict()
        # The measured block exists only for non-simulated backends, so
        # every simulated JSONL row stays byte-identical to its pre-backend
        # form (and stays machine-independent).
        if self.measured is not None:
            out["measured"] = self.measured.to_dict()
        return out

    def to_json_line(self) -> str:
        """Canonical single-line JSON (sorted keys, compact separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunRecord":
        return cls(
            config=RunConfig.from_dict(data["config"]),
            config_hash=str(data["config_hash"]),
            algorithm=str(data["algorithm"]),
            elapsed_time=float(data["elapsed_time"]),
            comm_time=float(data["comm_time"]),
            comp_time=float(data["comp_time"]),
            other_time=float(data["other_time"]),
            communication_volume=int(data["communication_volume"]),
            message_count=int(data["message_count"]),
            rdma_gets=int(data["rdma_gets"]),
            load_imbalance=float(data["load_imbalance"]),
            cv_over_mema=float(data["cv_over_mema"]),
            permutation_seconds=float(data["permutation_seconds"]),
            permutation_bytes=int(data["permutation_bytes"]),
            output_nnz=int(data["output_nnz"]),
            conserved=bool(data["conserved"]),
            per_rank_comm=[float(x) for x in data.get("per_rank_comm", [])],
            per_rank_comp=[float(x) for x in data.get("per_rank_comp", [])],
            per_rank_other=[float(x) for x in data.get("per_rank_other", [])],
            workload=str(data.get("workload", "squaring")),
            amg=AMGStats.from_dict(data["amg"]) if data.get("amg") else None,
            bc=BCStats.from_dict(data["bc"]) if data.get("bc") else None,
            chain=ChainStats.from_dict(data["chain"]) if data.get("chain") else None,
            triangles=(
                TriangleStats.from_dict(data["triangles"])
                if data.get("triangles")
                else None
            ),
            mcl=MCLStats.from_dict(data["mcl"]) if data.get("mcl") else None,
            measured=(
                MeasuredStats.from_dict(data["measured"])
                if data.get("measured")
                else None
            ),
        )

    @classmethod
    def from_json_line(cls, line: str) -> "RunRecord":
        return cls.from_dict(json.loads(line))

"""Deterministic result records produced by the experiment engine.

A :class:`RunRecord` holds everything a figure needs from one squaring
experiment — modelled times, communication volumes, message counts,
CV/memA, conservation status, per-rank breakdowns — and *only* modelled
(deterministic) quantities.  Measured wall-clock never enters a record, so
serial and parallel execution of the same grid produce byte-identical
JSONL, and a cached record is indistinguishable from a fresh run.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .config import RunConfig

__all__ = ["RunRecord"]


@dataclass
class RunRecord:
    """The persisted outcome of executing one :class:`RunConfig`."""

    #: the configuration that produced this record
    config: RunConfig
    #: cache key (``config.config_hash()`` at execution time)
    config_hash: str
    #: canonical algorithm name the registry resolved to
    algorithm: str
    #: modelled elapsed seconds (Σ over phases of the slowest rank)
    elapsed_time: float
    comm_time: float
    comp_time: float
    other_time: float
    #: total bytes received across all ranks and phases
    communication_volume: int
    message_count: int
    rdma_gets: int
    load_imbalance: float
    cv_over_mema: float
    #: modelled permutation/redistribution seconds (deterministic)
    permutation_seconds: float
    permutation_bytes: int
    output_nnz: int
    #: did every phase's ledger satisfy bytes_sent == bytes_received?
    conserved: bool
    #: per-rank modelled seconds by category (the Fig 8 stacked bars)
    per_rank_comm: List[float] = field(default_factory=list)
    per_rank_comp: List[float] = field(default_factory=list)
    per_rank_other: List[float] = field(default_factory=list)

    @property
    def total_time_with_permutation(self) -> float:
        """Kernel time plus the (amortised-once) permutation cost."""
        return self.elapsed_time + self.permutation_seconds

    @property
    def per_rank_total(self) -> List[float]:
        """Per-rank total modelled seconds (load-imbalance bar chart input)."""
        return [
            c + p + o
            for c, p, o in zip(self.per_rank_comm, self.per_rank_comp, self.per_rank_other)
        ]

    # ------------------------------------------------------------------
    # JSON round-trip (one JSONL line per record)
    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        return {
            "config_hash": self.config_hash,
            "config": self.config.as_dict(),
            "algorithm": self.algorithm,
            "elapsed_time": self.elapsed_time,
            "comm_time": self.comm_time,
            "comp_time": self.comp_time,
            "other_time": self.other_time,
            "communication_volume": self.communication_volume,
            "message_count": self.message_count,
            "rdma_gets": self.rdma_gets,
            "load_imbalance": self.load_imbalance,
            "cv_over_mema": self.cv_over_mema,
            "permutation_seconds": self.permutation_seconds,
            "permutation_bytes": self.permutation_bytes,
            "output_nnz": self.output_nnz,
            "conserved": self.conserved,
            "per_rank_comm": self.per_rank_comm,
            "per_rank_comp": self.per_rank_comp,
            "per_rank_other": self.per_rank_other,
        }

    def to_json_line(self) -> str:
        """Canonical single-line JSON (sorted keys, compact separators)."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunRecord":
        return cls(
            config=RunConfig.from_dict(data["config"]),
            config_hash=str(data["config_hash"]),
            algorithm=str(data["algorithm"]),
            elapsed_time=float(data["elapsed_time"]),
            comm_time=float(data["comm_time"]),
            comp_time=float(data["comp_time"]),
            other_time=float(data["other_time"]),
            communication_volume=int(data["communication_volume"]),
            message_count=int(data["message_count"]),
            rdma_gets=int(data["rdma_gets"]),
            load_imbalance=float(data["load_imbalance"]),
            cv_over_mema=float(data["cv_over_mema"]),
            permutation_seconds=float(data["permutation_seconds"]),
            permutation_bytes=int(data["permutation_bytes"]),
            output_nnz=int(data["output_nnz"]),
            conserved=bool(data["conserved"]),
            per_rank_comm=[float(x) for x in data.get("per_rank_comm", [])],
            per_rank_comp=[float(x) for x in data.get("per_rank_comp", [])],
            per_rank_other=[float(x) for x in data.get("per_rank_other", [])],
        )

    @classmethod
    def from_json_line(cls, line: str) -> "RunRecord":
        return cls.from_dict(json.loads(line))

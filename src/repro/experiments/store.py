"""JSONL persistence for experiment records, keyed by config hash.

One record per line, appended as sweeps complete.  Loading builds a
hash → record index (last write wins, so a re-run with ``force=True``
shadows older rows without rewriting the file); lines that fail to parse
— torn writes, rows from an incompatible schema version — are skipped as
cache misses rather than aborting the sweep.  Appends issue one
``O_APPEND`` ``write(2)`` per batch, so concurrent sweeps over disjoint
grids can share a store without interleaving partial lines; within one
engine invocation all appends happen in the parent process, in grid
order, which keeps the file deterministic.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Union

from .records import RunRecord

__all__ = ["ResultStore"]


def _parse_line(line: str) -> Optional[RunRecord]:
    """Parse one JSONL line; ``None`` (a miss) for torn/incompatible rows."""
    line = line.strip()
    if not line:
        return None
    try:
        return RunRecord.from_json_line(line)
    except (ValueError, KeyError, TypeError):
        return None


class ResultStore:
    """Append-only JSONL store of :class:`RunRecord` rows."""

    def __init__(self, path: Union[str, Path]):
        self.path = Path(path)

    def exists(self) -> bool:
        return self.path.is_file()

    def load(self) -> Dict[str, RunRecord]:
        """Read all records into a hash → record map (last write wins)."""
        records: Dict[str, RunRecord] = {}
        for record in self.load_records():
            records[record.config_hash] = record
        return records

    def load_records(self) -> List[RunRecord]:
        """All parseable records in file order (duplicates included)."""
        out: List[RunRecord] = []
        if not self.path.is_file():
            return out
        with self.path.open("r", encoding="utf-8") as fh:
            for line in fh:
                record = _parse_line(line)
                if record is not None:
                    out.append(record)
        return out

    def recover(self) -> int:
        """Truncate torn trailing bytes left by a crash mid-append.

        A process killed inside :meth:`append` can leave a partial final
        line (no newline, or a complete line that does not parse).  Loading
        already skips such rows, but a later append would splice new bytes
        onto the torn fragment and corrupt *that* record too — so the
        crash-safe service truncates the tail on adopt.  Only the trailing
        run of invalid data is removed; interior unparseable lines (old
        schema rows) keep their existing skip-on-load semantics.  Returns
        the number of bytes truncated.
        """
        if not self.path.is_file():
            return 0
        raw = self.path.read_bytes()
        pos = 0
        clean_end = 0               # offset just past the last valid row
        while pos < len(raw):
            nl = raw.find(b"\n", pos)
            if nl == -1:
                break               # torn tail without a newline
            line = raw[pos:nl]
            if not line.strip():
                clean_end = nl + 1  # blank line: harmless, keep it
            elif _parse_line(line.decode("utf-8", errors="replace")) is not None:
                clean_end = nl + 1
            pos = nl + 1
        # ``clean_end`` sits just past the last parseable row, so interior
        # invalid lines (followed by valid ones) are kept; only the
        # trailing run of invalid bytes is removed.
        removed = len(raw) - clean_end
        if removed:
            os.truncate(str(self.path), clean_end)
        return removed

    def append(self, records: Iterable[RunRecord]) -> int:
        """Append records (one JSONL line each); returns the count written.

        The whole batch goes out in a single ``write(2)`` on an
        ``O_APPEND`` descriptor, so a concurrent appender cannot land
        between the fragments of one line.
        """
        records = list(records)
        if not records:
            return 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        payload = "".join(r.to_json_line() + "\n" for r in records).encode("utf-8")
        fd = os.open(str(self.path), os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            view = memoryview(payload)
            while view:
                written = os.write(fd, view)
                view = view[written:]
            os.fsync(fd)
        finally:
            os.close(fd)
        return len(records)

    def stats(self) -> Dict[str, object]:
        """Store summary for the service's ``stats`` op.

        ``rows`` counts every parseable line (duplicates included);
        ``unique`` counts distinct config hashes, i.e. what ``load()``
        would serve as cache hits.
        """
        records = self.load_records()
        return {
            "path": str(self.path),
            "exists": self.path.is_file(),
            "rows": len(records),
            "unique": len({r.config_hash for r in records}),
            "bytes": self.path.stat().st_size if self.path.is_file() else 0,
        }

    def __len__(self) -> int:
        return len(self.load_records())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResultStore({str(self.path)!r})"

"""Command-line interface: run the paper's experiments from the shell.

Usage (after ``pip install -e .``)::

    python -m repro square   --dataset hv15r --algorithm 1d --nprocs 16
    python -m repro estimate --dataset eukarya --nprocs 16
    python -m repro galerkin --dataset queen --nprocs 16
    python -m repro bc       --dataset eukarya --nprocs 8 --sources 32
    python -m repro datasets

Every subcommand accepts either one of the built-in Table II analogues
(``--dataset`` + ``--scale``) or a MatrixMarket file (``--matrix path.mtx``),
so the same harness runs on the paper's real inputs when they are available.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from .analysis import breakdown_table, format_table, mebibytes, seconds
from .apps.amg import galerkin_product
from .apps.bc import batched_betweenness_centrality
from .apps.squaring import PERMUTATION_STRATEGIES, run_squaring
from .core import available_algorithms, should_partition
from .matrices import dataset_names, load_dataset, matrix_stats, read_matrix_market
from .runtime import PERLMUTTER
from .sparse import CSCMatrix

__all__ = ["main", "build_parser"]


def _load_input(args) -> CSCMatrix:
    if getattr(args, "matrix", None):
        return read_matrix_market(args.matrix)
    return load_dataset(args.dataset, scale=args.scale)


def _add_input_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="hv15r", choices=dataset_names(),
        help="built-in synthetic analogue of a Table II matrix",
    )
    parser.add_argument(
        "--matrix", default=None,
        help="path to a MatrixMarket file (overrides --dataset)",
    )
    parser.add_argument("--scale", type=float, default=0.5, help="dataset scale factor")
    parser.add_argument("--nprocs", type=int, default=16, help="simulated process count")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sparsity-aware distributed-memory SpGEMM (SC 2024) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_square = sub.add_parser("square", help="squaring benchmark (Figs 4, 5, 9)")
    _add_input_arguments(p_square)
    p_square.add_argument(
        "--algorithm", default="1d", choices=sorted({"1d", "2d", "3d", "outer-product",
                                                     "1d-naive-block-row",
                                                     "1d-improved-block-row"}),
    )
    p_square.add_argument("--strategy", default="none", choices=PERMUTATION_STRATEGIES)
    p_square.add_argument("--block-split", type=int, default=2048,
                          help="Algorithm 2's K (max RDMA messages per remote rank)")
    p_square.add_argument("--breakdown", action="store_true",
                          help="print the per-rank comm/comp/other breakdown")

    p_est = sub.add_parser("estimate", help="CV/memA partitioning criterion (§V-A)")
    _add_input_arguments(p_est)
    p_est.add_argument("--threshold", type=float, default=0.30)

    p_gal = sub.add_parser("galerkin", help="AMG Galerkin product RᵀAR (Figs 10-12)")
    _add_input_arguments(p_gal)

    p_bc = sub.add_parser("bc", help="batched betweenness centrality (Figs 13-14)")
    _add_input_arguments(p_bc)
    p_bc.add_argument("--sources", type=int, default=32, help="number of sampled sources")
    p_bc.add_argument("--batch-size", type=int, default=16)
    p_bc.add_argument("--algorithm", default="1d")

    sub.add_parser("datasets", help="list the built-in dataset analogues")
    sub.add_parser("algorithms", help="list the available distributed algorithms")
    return parser


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------

def _cmd_square(args) -> int:
    A = _load_input(args)
    run = run_squaring(
        A,
        algorithm=args.algorithm,
        strategy=args.strategy,
        nprocs=args.nprocs,
        block_split=args.block_split,
        cost_model=PERLMUTTER,
        dataset=args.dataset,
    )
    rows = [
        {
            "algorithm": run.algorithm,
            "strategy": run.strategy,
            "P": run.nprocs,
            "kernel time": seconds(run.spgemm_time),
            "kernel+perm": seconds(run.total_time_with_permutation),
            "comm volume": mebibytes(run.result.communication_volume),
            "messages": run.result.message_count,
            "CV/memA": f"{run.cv_over_mema:.3f}",
        }
    ]
    print(format_table(rows, title="squaring"))
    if args.breakdown:
        print()
        print(breakdown_table(run.result))
    return 0


def _cmd_estimate(args) -> int:
    A = _load_input(args)
    decision, ratio = should_partition(A, nprocs=args.nprocs, threshold=args.threshold)
    stats = matrix_stats(A, args.dataset)
    print(format_table([stats.as_row()], title="input"))
    print(
        f"\nCV/memA at P={args.nprocs}: {ratio:.3f} "
        f"-> {'apply' if decision else 'skip'} graph partitioning "
        f"(threshold {args.threshold:.0%})"
    )
    return 0


def _cmd_galerkin(args) -> int:
    A = _load_input(args)
    g = galerkin_product(A, nprocs=args.nprocs)
    rows = [
        {
            "step": "RtA (1D)",
            "time": seconds(g.left.elapsed_time),
            "volume": mebibytes(g.left.communication_volume),
        },
        {
            "step": "(RtA)R (outer-product)",
            "time": seconds(g.right.elapsed_time),
            "volume": mebibytes(g.right.communication_volume),
        },
    ]
    print(format_table(rows, title="Galerkin product"))
    print(
        f"\nR: {g.restriction.R.nrows} x {g.restriction.R.ncols} "
        f"({g.restriction.R.nnz} nnz); coarse operator: "
        f"{g.coarse.nrows} x {g.coarse.ncols} ({g.coarse.nnz} nnz)"
    )
    return 0


def _cmd_bc(args) -> int:
    A = _load_input(args)
    result = batched_betweenness_centrality(
        A,
        num_sources=args.sources,
        batch_size=args.batch_size,
        algorithm=args.algorithm,
        nprocs=args.nprocs,
        seed=0,
    )
    print(
        f"forward search: {seconds(result.forward_time)}   "
        f"backward sweep: {seconds(result.backward_time)}   "
        f"iterations: {len(result.iterations)}"
    )
    import numpy as np

    top = np.argsort(result.scores)[::-1][:10]
    rows = [{"vertex": int(v), "score": f"{result.scores[v]:.2f}"} for v in top]
    print(format_table(rows, title="top-10 vertices by approximate BC"))
    return 0


def _cmd_datasets(_args) -> int:
    from .matrices import DATASETS

    rows = [
        {
            "name": spec.name,
            "paper matrix": spec.paper_name,
            "paper rows": spec.paper_nrows,
            "paper nnz": spec.paper_nnz,
            "best strategy": spec.paper_best_strategy,
        }
        for spec in DATASETS.values()
    ]
    print(format_table(rows, title="built-in dataset analogues (Table II)"))
    return 0


def _cmd_algorithms(_args) -> int:
    for name in available_algorithms():
        print(name)
    return 0


_COMMANDS = {
    "square": _cmd_square,
    "estimate": _cmd_estimate,
    "galerkin": _cmd_galerkin,
    "bc": _cmd_bc,
    "datasets": _cmd_datasets,
    "algorithms": _cmd_algorithms,
}


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

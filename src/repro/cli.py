"""Command-line interface: run the paper's experiments from the shell.

Usage (after ``pip install -e .``)::

    python -m repro square    --dataset hv15r --algorithm 1d --nprocs 16
    python -m repro estimate  --dataset eukarya --nprocs 16
    python -m repro galerkin  --dataset queen --nprocs 16
    python -m repro bc        --dataset eukarya --nprocs 8 --sources 32
    python -m repro triangles --dataset eukarya --nprocs 16 --mask-mode early
    python -m repro mcl       --dataset eukarya --nprocs 16 --inflation 2.0
    python -m repro sweep     --datasets hv15r,eukarya --algorithms 1d,2d \
                              --nprocs 4,16,64 --workers 4 --records runs.jsonl
    python -m repro sweep     --workloads bc --datasets eukarya --bc-sources 16
    python -m repro bench     --out BENCH_PR5.json --workers 2
    python -m repro serve     --socket /tmp/repro.sock --records runs.jsonl
    python -m repro datasets

Every subcommand accepts either one of the built-in Table II analogues
(``--dataset`` + ``--scale``) or a MatrixMarket file (``--matrix path.mtx``),
so the same harness runs on the paper's real inputs when they are available.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import List, Optional

from .analysis import breakdown_table, format_table, mebibytes, seconds
from .apps.amg import galerkin_product
from .apps.bc import batched_betweenness_centrality
from .apps.squaring import PERMUTATION_STRATEGIES, run_squaring
from .core import available_algorithms, should_partition
from .experiments import (
    COST_MODELS,
    ExperimentGrid,
    JobRejected,
    RunConfig,
    run_grid,
    workload_names,
    write_trajectory,
)
from .matrices import dataset_names, load_dataset, matrix_stats, read_matrix_market
from .runtime import PERLMUTTER, available_backends
from .sparse import CSCMatrix, KERNEL_VARIANTS, set_kernel_variant

__all__ = ["main", "build_parser"]


def _load_input(args) -> CSCMatrix:
    if getattr(args, "matrix", None):
        return read_matrix_market(args.matrix)
    return load_dataset(args.dataset, scale=args.scale)


def _input_label(args) -> str:
    """Dataset label for reports: the file stem when ``--matrix`` is given."""
    if getattr(args, "matrix", None):
        return pathlib.Path(args.matrix).stem
    return args.dataset


def _add_kernel_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--kernel", default=None, metavar="VARIANT",
        help="local-kernel implementation variant "
             f"({', '.join(KERNEL_VARIANTS)}); results and modelled "
             "counters are identical across variants — only host "
             "wall-clock changes (default: the REPRO_KERNEL env var, "
             "else auto)",
    )


def _add_input_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--dataset", default="hv15r", choices=dataset_names(),
        help="built-in synthetic analogue of a Table II matrix",
    )
    parser.add_argument(
        "--matrix", default=None,
        help="path to a MatrixMarket file (overrides --dataset)",
    )
    parser.add_argument("--scale", type=float, default=0.5, help="dataset scale factor")
    parser.add_argument("--nprocs", type=int, default=16, help="simulated process count")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Sparsity-aware distributed-memory SpGEMM (SC 2024) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_square = sub.add_parser("square", help="squaring benchmark (Figs 4, 5, 9)")
    _add_input_arguments(p_square)
    p_square.add_argument(
        "--algorithm", default="1d", choices=sorted({"1d", "2d", "3d", "outer-product",
                                                     "1d-naive-block-row",
                                                     "1d-improved-block-row"}),
    )
    p_square.add_argument("--strategy", default="none", choices=PERMUTATION_STRATEGIES)
    p_square.add_argument("--block-split", type=int, default=2048,
                          help="Algorithm 2's K (max RDMA messages per remote rank)")
    p_square.add_argument("--layers", type=int, default=None,
                          help="3D layer count c (3d/3d-split only; default: auto)")
    p_square.add_argument("--chain", type=int, default=None, metavar="K",
                          help="iterated squaring: compute A^(2^K) on the "
                               "resident pipeline instead of a single A·A")
    p_square.add_argument("--breakdown", action="store_true",
                          help="print the per-rank comm/comp/other breakdown")
    p_square.add_argument("--backend", default="simulated",
                          help="execution backend (simulated = modelled only; "
                               "shm = real shared-memory transfers)")
    _add_kernel_argument(p_square)

    p_est = sub.add_parser("estimate", help="CV/memA partitioning criterion (§V-A)")
    _add_input_arguments(p_est)
    p_est.add_argument("--threshold", type=float, default=0.30)

    p_gal = sub.add_parser("galerkin", help="AMG Galerkin product RᵀAR (Figs 10-12)")
    _add_input_arguments(p_gal)

    p_bc = sub.add_parser("bc", help="batched betweenness centrality (Figs 13-14)")
    _add_input_arguments(p_bc)
    p_bc.add_argument("--sources", type=int, default=32, help="number of sampled sources")
    p_bc.add_argument("--batch-size", type=int, default=16)
    p_bc.add_argument("--algorithm", default="1d")

    p_tri = sub.add_parser(
        "triangles",
        help="triangle counting via masked SpGEMM (L·L masked by L)",
    )
    _add_input_arguments(p_tri)
    p_tri.add_argument("--algorithm", default="1d")
    p_tri.add_argument("--mask-mode", default="late", choices=("late", "early"),
                       help="early (1d only) prunes the RDMA fetch plan "
                            "against the mask's column support")
    p_tri.add_argument("--block-split", type=int, default=2048,
                       help="Algorithm 2's K (max RDMA messages per remote rank)")

    p_mcl = sub.add_parser(
        "mcl",
        help="Markov clustering (expansion + inflation + pruning to convergence)",
    )
    _add_input_arguments(p_mcl)
    p_mcl.add_argument("--algorithm", default="1d",
                       help="1D-column-output algorithm (1d, outer-product)")
    p_mcl.add_argument("--inflation", type=float, default=2.0,
                       help="inflation exponent r")
    p_mcl.add_argument("--prune-threshold", type=float, default=1e-3,
                       help="entries with |value| <= threshold are dropped")
    p_mcl.add_argument("--max-iters", type=int, default=30,
                       help="iteration cap")
    p_mcl.add_argument("--block-split", type=int, default=2048,
                       help="Algorithm 2's K (max RDMA messages per remote rank)")

    p_sweep = sub.add_parser(
        "sweep",
        help="run an experiment grid through the parallel, cached engine",
    )
    p_sweep.add_argument(
        "--datasets", default="hv15r",
        help="comma-separated built-in dataset names",
    )
    p_sweep.add_argument(
        "--workloads", default="squaring",
        # The valid set comes from the registry, so a new workload shows up
        # here (and in the validation message) without touching the CLI.
        help=f"comma-separated workloads ({', '.join(workload_names())})",
    )
    p_sweep.add_argument("--algorithms", default="1d",
                         help="comma-separated algorithm names")
    p_sweep.add_argument("--strategies", default="none",
                         help="comma-separated permutation strategies")
    p_sweep.add_argument("--nprocs", default="4,16",
                         help="comma-separated simulated process counts")
    p_sweep.add_argument("--block-splits", default="2048",
                         help="comma-separated block-split (K) values")
    p_sweep.add_argument("--seeds", default="0",
                         help="comma-separated permutation seeds")
    p_sweep.add_argument("--scale", type=float, default=0.5,
                         help="dataset scale factor")
    p_sweep.add_argument("--cost-model", default="perlmutter",
                         choices=sorted(COST_MODELS))
    p_sweep.add_argument("--workers", type=int, default=0,
                         help="worker processes (0/1 = serial)")
    p_sweep.add_argument("--worker-cache-mb", type=int, default=None,
                         help="per-worker resident operand cache budget "
                              "(MiB; default 256)")
    p_sweep.add_argument("--no-shm-transport", action="store_true",
                         help="disable the shared-memory dataset transport "
                              "(workers fall back to the disk cache)")
    p_sweep.add_argument("--records", default=None,
                         help="JSONL store for records (enables caching/resume)")
    p_sweep.add_argument("--force", action="store_true",
                         help="re-execute configs even on a cache hit")
    p_sweep.add_argument("--amg-phase", default=None, choices=("rta", "rtar"),
                         help="amg-restriction workload: RtA only, or RtA + (RtA)R")
    p_sweep.add_argument("--mis-seed", type=int, default=0,
                         help="amg-restriction workload: MIS-2 aggregation seed")
    p_sweep.add_argument("--right-algorithm", default=None,
                         help="amg-restriction workload: (RtA)R algorithm "
                              "(default outer-product)")
    p_sweep.add_argument("--bc-sources", type=int, default=None,
                         help="bc workload: number of source vertices (required)")
    p_sweep.add_argument("--bc-batch", type=int, default=None,
                         help="bc workload: batch size (default: all sources)")
    p_sweep.add_argument("--bc-stride", type=int, default=None,
                         help="bc workload: pick sources 0, s, 2s, … instead of sampling")
    p_sweep.add_argument("--bc-directed", action="store_true",
                         help="bc workload: treat the adjacency matrix as directed")
    p_sweep.add_argument("--resident", action="store_true",
                         help="bc workload: hold A resident on one run-wide "
                              "cluster (setup charged once per run, not per "
                              "iteration)")
    p_sweep.add_argument("--square-k", type=int, default=None,
                         help="chained-squaring workload: number of squarings "
                              "(required; final product is A^(2^k))")
    p_sweep.add_argument("--mask-mode", default=None, choices=("late", "early"),
                         help="triangles workload: apply the mask after the "
                              "kernel (late) or also prune the 1d fetch plan "
                              "(early)")
    p_sweep.add_argument("--mcl-inflation", type=float, default=None,
                         help="mcl workload: inflation exponent r (default 2.0)")
    p_sweep.add_argument("--mcl-prune", type=float, default=None,
                         help="mcl workload: pruning threshold (default 1e-3)")
    p_sweep.add_argument("--mcl-max-iters", type=int, default=None,
                         help="mcl workload: iteration cap (default 30)")
    p_sweep.add_argument("--backend", default="simulated",
                         help="execution backend for every config of the grid "
                              "(simulated = modelled only; shm = real "
                              "shared-memory transfers)")
    p_sweep.add_argument("--budget", type=int, default=None,
                         help="admission control: max fresh executions the "
                              "sweep may trigger (cache hits are free); a "
                              "grid over budget is rejected before anything "
                              "runs")
    p_sweep.add_argument("--max-inflight-configs", type=int, default=None,
                         help="admission control: reject the sweep when it "
                              "would put more than this many configs in "
                              "flight")
    _add_kernel_argument(p_sweep)

    p_bench = sub.add_parser(
        "bench",
        help="run the representative multi-workload bench grid and emit a "
             "BENCH_*.json perf trajectory",
    )
    p_bench.add_argument(
        "--workloads", default=",".join(workload_names()),
        help=f"comma-separated workloads to bench ({', '.join(workload_names())})",
    )
    p_bench.add_argument("--scale", type=float, default=0.2,
                         help="dataset scale factor of the bench grid")
    p_bench.add_argument("--workers", type=int, default=0,
                         help="worker processes (0/1 = serial)")
    p_bench.add_argument("--records", default=None,
                         help="JSONL store for the bench records (enables caching)")
    p_bench.add_argument("--out", default="BENCH.json",
                         help="path of the rolled-up trajectory JSON")
    p_bench.add_argument("--label", default=None,
                         help="trajectory label (default: the --out file stem)")
    p_bench.add_argument("--force", action="store_true",
                         help="re-execute configs even on a cache hit")
    p_bench.add_argument("--backend", default=None,
                         help="force one execution backend for every bench "
                              "config (default: the built-in mix — simulated "
                              "plus one shm validation run per workload)")
    _add_kernel_argument(p_bench)

    p_serve = sub.add_parser(
        "serve",
        help="long-lived experiment service: one scheduler + resident "
             "operand cache behind a JSON-line socket",
    )
    p_serve.add_argument("--socket", default=None, metavar="PATH",
                         help="serve on a unix socket at PATH")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="TCP bind host (with --port; default localhost)")
    p_serve.add_argument("--port", type=int, default=None,
                         help="serve on localhost TCP (0 picks a free port, "
                              "printed on startup)")
    p_serve.add_argument("--workers", type=int, default=0,
                         help="worker processes of the shared pool "
                              "(0/1 = serial lane only)")
    p_serve.add_argument("--records", default=None,
                         help="JSONL store shared by every job "
                              "(enables caching/resume)")
    p_serve.add_argument("--max-jobs", type=int, default=None,
                         help="admission control: max jobs in flight")
    p_serve.add_argument("--max-configs", type=int, default=None,
                         help="admission control: max configs in flight")
    p_serve.add_argument("--operand-cache-mb", type=int, default=256,
                         help="budget (MiB) of the resident operand cache "
                              "(0 disables it)")
    p_serve.add_argument("--worker-cache-mb", type=int, default=None,
                         help="per-pool-worker resident operand cache budget "
                              "(MiB; defaults to --operand-cache-mb)")
    p_serve.add_argument("--journal", default=None, metavar="DIR",
                         help="crash-safe mode: write-ahead job journal in "
                              "DIR; on restart, interrupted jobs are "
                              "re-adopted and resumed")
    p_serve.add_argument("--task-timeout", type=float, default=None,
                         help="kill + retry a pool task running longer than "
                              "this many seconds (default: REPRO_TASK_TIMEOUT "
                              "or no timeout)")
    p_serve.add_argument("--max-retries", type=int, default=None,
                         help="extra attempts for a task lost to a dead/hung "
                              "worker (default: REPRO_MAX_RETRIES or 1)")

    sub.add_parser("datasets", help="list the built-in dataset analogues")
    sub.add_parser("algorithms", help="list the available distributed algorithms")
    return parser


# ----------------------------------------------------------------------
# Subcommand implementations
# ----------------------------------------------------------------------

def _check_backend(name: Optional[str]) -> Optional[str]:
    """Validation message for a ``--backend`` value (``None`` = valid)."""
    if name is None or name in available_backends():
        return None
    return (
        f"unknown backend {name!r}; available backends: "
        f"{', '.join(available_backends())}"
    )


def _activate_kernel(name: Optional[str]) -> Optional[str]:
    """Validate and activate a ``--kernel`` value (``None`` = leave as-is).

    Returns the validation message on an unknown variant (for a clean exit 2
    before anything runs).  An *unavailable* variant (``numba`` without the
    package) is not an error: the selector degrades to numpy with one
    warning, per the fallback policy in ``docs/kernels.md``.
    """
    if name is None:
        return None
    if name not in KERNEL_VARIANTS:
        return (
            f"unknown kernel variant {name!r}; valid variants: "
            f"{', '.join(KERNEL_VARIANTS)}"
        )
    # Writes REPRO_KERNEL, so pool workers of a sweep inherit the choice.
    set_kernel_variant(name)
    return None


def _cmd_square(args) -> int:
    problem = _check_backend(args.backend) or _activate_kernel(args.kernel)
    if problem:
        print(problem, file=sys.stderr)
        return 2
    A = _load_input(args)
    if args.chain is not None:
        return _cmd_square_chain(args, A)
    run = run_squaring(
        A,
        algorithm=args.algorithm,
        strategy=args.strategy,
        nprocs=args.nprocs,
        block_split=args.block_split,
        layers=args.layers,
        cost_model=PERLMUTTER,
        dataset=_input_label(args),
        backend=args.backend,
    )
    rows = [
        {
            "algorithm": run.algorithm,
            "strategy": run.strategy,
            "P": run.nprocs,
            "kernel time": seconds(run.spgemm_time),
            "kernel+perm": seconds(run.total_time_with_permutation),
            "comm volume": mebibytes(run.result.communication_volume),
            "messages": run.result.message_count,
            "CV/memA": f"{run.cv_over_mema:.3f}",
        }
    ]
    print(format_table(rows, title="squaring"))
    if args.breakdown:
        print()
        print(breakdown_table(run.result))
    return 0


def _cmd_square_chain(args, A) -> int:
    from .apps.squaring import run_chained_squaring

    if args.chain < 1:
        print(f"--chain must be >= 1, got {args.chain}", file=sys.stderr)
        return 2
    run = run_chained_squaring(
        A,
        k=args.chain,
        algorithm=args.algorithm,
        strategy=args.strategy,
        nprocs=args.nprocs,
        block_split=args.block_split,
        layers=args.layers,
        cost_model=PERLMUTTER,
        dataset=_input_label(args),
        backend=args.backend,
    )
    rows = [
        {
            "level": i,
            "power": 2 ** (i + 1),
            "time": seconds(lvl.elapsed_time),
            "comm volume": mebibytes(lvl.communication_volume),
            "messages": lvl.message_count,
            "output nnz": lvl.output_nnz,
        }
        for i, lvl in enumerate(run.results)
    ]
    print(format_table(rows, title=f"chained squaring (A^(2^{run.k}))"))
    print(
        f"\ntotal: {seconds(run.elapsed_time)}   "
        f"volume: {mebibytes(run.communication_volume)}   "
        f"messages: {run.message_count}"
    )
    if args.breakdown:
        for i, level in enumerate(run.results):
            print()
            print(f"level {i} (A^{2 ** (i + 1)}):")
            print(breakdown_table(level))
    return 0


def _cmd_estimate(args) -> int:
    A = _load_input(args)
    decision, ratio = should_partition(A, nprocs=args.nprocs, threshold=args.threshold)
    stats = matrix_stats(A, _input_label(args))
    print(format_table([stats.as_row()], title="input"))
    print(
        f"\nCV/memA at P={args.nprocs}: {ratio:.3f} "
        f"-> {'apply' if decision else 'skip'} graph partitioning "
        f"(threshold {args.threshold:.0%})"
    )
    return 0


def _cmd_galerkin(args) -> int:
    A = _load_input(args)
    g = galerkin_product(A, nprocs=args.nprocs)
    rows = [
        {
            "step": "RtA (1D)",
            "time": seconds(g.left.elapsed_time),
            "volume": mebibytes(g.left.communication_volume),
        },
        {
            "step": "(RtA)R (outer-product)",
            "time": seconds(g.right.elapsed_time),
            "volume": mebibytes(g.right.communication_volume),
        },
    ]
    print(format_table(rows, title="Galerkin product"))
    print(
        f"\nR: {g.restriction.R.nrows} x {g.restriction.R.ncols} "
        f"({g.restriction.R.nnz} nnz); coarse operator: "
        f"{g.coarse.nrows} x {g.coarse.ncols} ({g.coarse.nnz} nnz)"
    )
    return 0


def _cmd_bc(args) -> int:
    A = _load_input(args)
    result = batched_betweenness_centrality(
        A,
        num_sources=args.sources,
        batch_size=args.batch_size,
        algorithm=args.algorithm,
        nprocs=args.nprocs,
        seed=0,
    )
    print(
        f"forward search: {seconds(result.forward_time)}   "
        f"backward sweep: {seconds(result.backward_time)}   "
        f"iterations: {len(result.iterations)}"
    )
    import numpy as np

    top = np.argsort(result.scores)[::-1][:10]
    rows = [{"vertex": int(v), "score": f"{result.scores[v]:.2f}"} for v in top]
    print(format_table(rows, title="top-10 vertices by approximate BC"))
    return 0


def _cmd_triangles(args) -> int:
    from .apps.triangles import run_triangles

    A = _load_input(args)
    run = run_triangles(
        A,
        algorithm=args.algorithm,
        nprocs=args.nprocs,
        block_split=args.block_split,
        mask_mode=args.mask_mode,
        dataset=_input_label(args),
    )
    rows = [
        {
            "algorithm": run.algorithm,
            "P": run.nprocs,
            "mask": run.mask_mode,
            "triangles": run.triangles,
            "L nnz": run.l_nnz,
            "masked nnz": run.masked_nnz,
            "time": seconds(run.result.elapsed_time),
            "comm volume": mebibytes(run.result.communication_volume),
            "messages": run.result.message_count,
        }
    ]
    print(format_table(rows, title="triangle counting ((L·L) ⊙ L)"))
    print(f"\nscipy reference: {run.reference} -> "
          f"{'match' if run.matches_reference else 'MISMATCH'}")
    return 0 if run.matches_reference else 1


def _cmd_mcl(args) -> int:
    from .apps.mcl import run_mcl

    A = _load_input(args)
    run = run_mcl(
        A,
        inflation=args.inflation,
        prune_threshold=args.prune_threshold,
        max_iterations=args.max_iters,
        algorithm=args.algorithm,
        nprocs=args.nprocs,
        block_split=args.block_split,
        dataset=_input_label(args),
    )
    expand = [it for it in run.iterations if it.phase == "expand"]
    rows = [
        {
            "iter": it.iteration,
            "time": seconds(it.time),
            "volume": mebibytes(it.volume),
            "messages": it.messages,
            "nnz after expand": it.nnz,
        }
        for it in expand
    ]
    print(format_table(rows, title=f"MCL (inflation {run.inflation}, "
                                   f"prune {run.prune_threshold})"))
    print(
        f"\n{'converged' if run.converged else 'NOT converged'} after "
        f"{run.n_iterations} iterations (chaos {run.final_chaos:.2e}); "
        f"{run.n_clusters} clusters, final nnz {run.final_nnz}"
    )
    print(
        f"total: {seconds(run.elapsed_time)}   "
        f"volume: {mebibytes(run.communication_volume)}   "
        f"messages: {run.message_count}"
    )
    return 0 if run.converged and run.conserved else 1


def _parse_csv(text: str, cast) -> List:
    return [cast(part.strip()) for part in text.split(",") if part.strip()]


def _validate_grid(grid: ExperimentGrid) -> List[str]:
    """Axis problems of a grid (empty = valid).

    Validation happens up front: a typo must exit cleanly before any config
    executes, not crash a worker mid-sweep after partial persistence.
    """
    from .core.registry import ALGORITHM_FACTORIES

    problems = []
    unknown = [d for d in grid.datasets if d not in dataset_names()]
    if unknown:
        problems.append(f"unknown datasets: {', '.join(unknown)}")
    unknown = [w for w in grid.workloads if w not in workload_names()]
    if unknown:
        # List the valid set straight from the registry so this message can
        # never go stale when a workload is added.
        problems.append(
            f"unknown workloads: {', '.join(unknown)} "
            f"(valid: {', '.join(workload_names())})"
        )
    # "local" is the bc workload's run-everything-in-one-process mode; the
    # distributed registry does not know it.
    bc_only = set(grid.workloads) == {"bc"}
    valid_algorithms = set(ALGORITHM_FACTORIES) | ({"local"} if bc_only else set())
    unknown = [a for a in grid.algorithms if a.lower() not in valid_algorithms]
    if unknown:
        problems.append(f"unknown algorithms: {', '.join(unknown)}")
    unknown = [s for s in grid.strategies if s not in PERMUTATION_STRATEGIES]
    if unknown:
        problems.append(f"unknown strategies: {', '.join(unknown)}")
    unknown = [b for b in grid.backends if b not in available_backends()]
    if unknown:
        problems.append(
            f"unknown backends: {', '.join(unknown)}; available backends: "
            f"{', '.join(available_backends())}"
        )
    bad = [p for p in grid.process_counts if p <= 0]
    if bad:
        problems.append(f"process counts must be positive: {bad}")
    bad = [k for k in grid.block_splits if k <= 0]
    if bad:
        problems.append(f"block splits must be positive: {bad}")
    if grid.scale <= 0:
        problems.append(f"scale must be positive: {grid.scale}")
    if "bc" in grid.workloads:
        if grid.bc_sources is None:
            problems.append("the bc workload requires --bc-sources")
        elif grid.bc_sources <= 0:
            problems.append(f"--bc-sources must be positive: {grid.bc_sources}")
        if grid.bc_batch is not None and grid.bc_batch <= 0:
            problems.append(f"--bc-batch must be positive: {grid.bc_batch}")
        if grid.bc_source_stride is not None and grid.bc_source_stride <= 0:
            problems.append(f"--bc-stride must be positive: {grid.bc_source_stride}")
    if grid.amg_phase not in (None, "rta", "rtar"):
        problems.append(f"unknown amg phase: {grid.amg_phase}")
    if "chained-squaring" in grid.workloads:
        if grid.square_k is None:
            problems.append("the chained-squaring workload requires --square-k")
        elif grid.square_k < 1:
            problems.append(f"--square-k must be >= 1: {grid.square_k}")
    if "triangles" in grid.workloads and grid.mask_mode == "early":
        non_1d = [a for a in grid.algorithms
                  if a.lower() not in ("1d", "1d-sparsity-aware")]
        if non_1d:
            problems.append(
                "--mask-mode early only applies to the 1d algorithm "
                f"(got: {', '.join(non_1d)})"
            )
    if "mcl" in grid.workloads:
        from .apps.mcl import COLUMN_OUTPUT_ALGORITHMS as column_only

        non_col = [a for a in grid.algorithms if a.lower() not in column_only]
        if non_col:
            problems.append(
                "the mcl workload requires a 1D-column-output algorithm "
                f"({', '.join(column_only)}); got: {', '.join(non_col)}"
            )
        if grid.mcl_inflation is not None and grid.mcl_inflation <= 0:
            problems.append(f"--mcl-inflation must be positive: {grid.mcl_inflation}")
        if grid.mcl_prune is not None and grid.mcl_prune < 0:
            problems.append(f"--mcl-prune must be non-negative: {grid.mcl_prune}")
        if grid.mcl_max_iters is not None and grid.mcl_max_iters < 1:
            problems.append(f"--mcl-max-iters must be >= 1: {grid.mcl_max_iters}")
    return problems


def _record_row(r) -> dict:
    return {
        "workload": r.workload,
        "dataset": r.config.dataset,
        "algorithm": r.algorithm,
        "strategy": r.config.strategy,
        "P": r.config.nprocs,
        "K": r.config.block_split,
        "seed": r.config.seed,
        "time (s)": f"{r.elapsed_time:.6f}",
        "time+perm (s)": f"{r.total_time_with_permutation:.6f}",
        "volume": mebibytes(r.communication_volume),
        "messages": r.message_count,
        "CV/memA": f"{r.cv_over_mema:.3f}",
        "conserved": "yes" if r.conserved else "NO",
    }


def _cmd_sweep(args) -> int:
    grid = ExperimentGrid(
        datasets=_parse_csv(args.datasets, str),
        workloads=_parse_csv(args.workloads, str),
        algorithms=_parse_csv(args.algorithms, str),
        strategies=_parse_csv(args.strategies, str),
        process_counts=_parse_csv(args.nprocs, int),
        block_splits=_parse_csv(args.block_splits, int),
        seeds=_parse_csv(args.seeds, int),
        scale=args.scale,
        cost_model=args.cost_model,
        amg_phase=args.amg_phase,
        mis_seed=args.mis_seed,
        right_algorithm=args.right_algorithm,
        bc_sources=args.bc_sources,
        bc_batch=args.bc_batch,
        bc_source_stride=args.bc_stride,
        bc_directed=args.bc_directed,
        resident=args.resident,
        square_k=args.square_k,
        mask_mode=args.mask_mode,
        mcl_inflation=args.mcl_inflation,
        mcl_prune=args.mcl_prune,
        mcl_max_iters=args.mcl_max_iters,
        backends=(args.backend,),
    )
    problems = _validate_grid(grid)
    kernel_problem = _activate_kernel(args.kernel)
    if kernel_problem:
        problems.append(kernel_problem)
    if problems:
        for problem in problems:
            print(problem, file=sys.stderr)
        return 2
    try:
        result = run_grid(
            grid,
            workers=args.workers,
            store=args.records,
            force=args.force,
            progress=print,
            budget=args.budget,
            max_inflight_configs=args.max_inflight_configs,
            worker_cache_mb=args.worker_cache_mb,
            transport=False if args.no_shm_transport else None,
        )
    except JobRejected as exc:
        # Admission control refused the whole grid before anything executed
        # or was persisted; surface the reason and a distinct exit code.
        print(f"sweep rejected: {exc.reason}", file=sys.stderr)
        return 3
    print(format_table([_record_row(r) for r in result.records], title="sweep"))
    print()
    print(result.summary())
    return 0 if all(r.conserved for r in result.records) else 1


def _bench_configs(workload: str, scale: float) -> List[RunConfig]:
    """The representative bench grid of one workload (one figure family)."""
    if workload == "squaring":
        return [
            RunConfig(dataset="hv15r", algorithm="1d", strategy="none",
                      nprocs=p, block_split=32, scale=scale)
            for p in (4, 16)
        ] + [
            RunConfig(dataset="hv15r", algorithm="2d", strategy="random",
                      nprocs=16, block_split=32, scale=scale),
            RunConfig(dataset="eukarya", algorithm="1d", strategy="metis",
                      nprocs=8, block_split=32, scale=scale),
        ]
    if workload == "amg-restriction":
        return [
            RunConfig(dataset="queen", workload="amg-restriction",
                      algorithm="1d", amg_phase=phase, nprocs=16, scale=scale)
            for phase in ("rta", "rtar")
        ]
    if workload == "chained-squaring":
        return [
            RunConfig(dataset="hv15r", workload="chained-squaring", algorithm="1d",
                      nprocs=4, block_split=32, scale=scale, square_k=2),
        ]
    if workload == "bc":
        return [
            RunConfig(dataset="hv15r", workload="bc", algorithm="1d", nprocs=4,
                      scale=scale, bc_sources=8, bc_batch=8, bc_source_stride=4),
            # The same run with A held resident: the setup phase is charged
            # once per run, so times drop while per-iteration fetch volumes
            # stay put.
            RunConfig(dataset="hv15r", workload="bc", algorithm="1d", nprocs=4,
                      scale=scale, bc_sources=8, bc_batch=8, bc_source_stride=4,
                      resident=True),
        ]
    if workload == "triangles":
        return [
            RunConfig(dataset="eukarya", workload="triangles", algorithm="1d",
                      nprocs=4, block_split=32, scale=scale),
            # Same count; the fetch plan is pruned against the mask support.
            RunConfig(dataset="eukarya", workload="triangles", algorithm="1d",
                      nprocs=4, block_split=32, scale=scale, mask_mode="early"),
            RunConfig(dataset="hv15r", workload="triangles", algorithm="2d",
                      nprocs=4, block_split=32, scale=scale),
        ]
    if workload == "mcl":
        return [
            RunConfig(dataset="eukarya", workload="mcl", algorithm="1d",
                      nprocs=4, block_split=32, scale=scale),
        ]
    raise ValueError(f"unknown workload {workload!r}; available: {workload_names()}")


def _cmd_bench(args) -> int:
    import dataclasses
    import time

    workloads = _parse_csv(args.workloads, str)
    unknown = [w for w in workloads if w not in workload_names()]
    if unknown:
        print(f"unknown workloads: {', '.join(unknown)}", file=sys.stderr)
        return 2
    problem = _check_backend(args.backend) or _activate_kernel(args.kernel)
    if problem:
        print(problem, file=sys.stderr)
        return 2
    configs: List[RunConfig] = []
    for workload in workloads:
        base = _bench_configs(workload, args.scale)
        if args.backend is not None:
            base = [dataclasses.replace(c, backend=args.backend) for c in base]
        else:
            # The default mix carries one measured validation point per
            # workload: the workload's first representative config re-run
            # on the shm backend at P=4 (small, so the physical transfers
            # stay cheap; the modelled counters are backend-invariant).
            base = base + [dataclasses.replace(base[0], backend="shm", nprocs=4)]
        configs.extend(base)
    t0 = time.perf_counter()
    result = run_grid(
        configs,
        workers=args.workers,
        store=args.records,
        force=args.force,
        progress=print,
    )
    wall = time.perf_counter() - t0
    print(format_table([_record_row(r) for r in result.records], title="bench"))
    print()
    print(result.summary())
    label = args.label or pathlib.Path(args.out).stem
    write_trajectory(
        args.out,
        result.records,
        label=label,
        wall_seconds=wall,
        sweep_stats={
            "total": result.stats.total,
            "cached": result.stats.cached,
            "executed": result.stats.executed,
            "deduped": result.stats.deduped,
            "serial_lane": result.stats.serial_lane,
            "workers": result.stats.workers,
            "residency_hits": result.stats.residency_hits,
            "residency_misses": result.stats.residency_misses,
            "residency_evictions": result.stats.residency_evictions,
            "stolen": result.stats.stolen,
            "disk_hits": result.stats.disk_hits,
            "disk_misses": result.stats.disk_misses,
        },
    )
    print(f"trajectory written to {args.out}")
    return 0 if all(r.conserved for r in result.records) else 1


def _cmd_serve(args) -> int:
    import asyncio

    from .experiments.service import ExperimentService

    if args.socket is None and args.port is None:
        print("serve needs --socket PATH or --port N (0 = pick a free port)",
              file=sys.stderr)
        return 2
    service = ExperimentService(
        workers=args.workers,
        store=args.records,
        max_inflight_jobs=args.max_jobs,
        max_inflight_configs=args.max_configs,
        operand_cache_mb=args.operand_cache_mb,
        worker_cache_mb=args.worker_cache_mb,
        journal=args.journal,
        task_timeout=args.task_timeout,
        max_retries=args.max_retries,
    )

    # Announced on its own flushed line so wrappers (CI, tests) can wait for
    # readiness and, with --port 0, learn the picked port.
    def ready(address: str) -> None:
        print(f"repro serve: listening on {address}", flush=True)

    try:
        asyncio.run(service.run(
            socket_path=args.socket,
            host=args.host,
            port=args.port or 0,
            ready=ready,
        ))
    except KeyboardInterrupt:
        pass
    print("repro serve: stopped", flush=True)
    return 0


def _cmd_datasets(_args) -> int:
    from .matrices import DATASETS

    rows = [
        {
            "name": spec.name,
            "paper matrix": spec.paper_name,
            "paper rows": spec.paper_nrows,
            "paper nnz": spec.paper_nnz,
            "best strategy": spec.paper_best_strategy,
        }
        for spec in DATASETS.values()
    ]
    print(format_table(rows, title="built-in dataset analogues (Table II)"))
    return 0


def _cmd_algorithms(_args) -> int:
    for name in available_algorithms():
        print(name)
    return 0


_COMMANDS = {
    "square": _cmd_square,
    "estimate": _cmd_estimate,
    "galerkin": _cmd_galerkin,
    "bc": _cmd_bc,
    "triangles": _cmd_triangles,
    "mcl": _cmd_mcl,
    "sweep": _cmd_sweep,
    "bench": _cmd_bench,
    "serve": _cmd_serve,
    "datasets": _cmd_datasets,
    "algorithms": _cmd_algorithms,
}


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())

#!/usr/bin/env python
"""Quickstart: square a sparse matrix with the sparsity-aware 1D SpGEMM algorithm.

Builds a clustered synthetic matrix (an analogue of the paper's hv15r input),
runs the paper's Algorithm 1 on a 16-rank simulated cluster, compares it with
the 2D sparse SUMMA baseline, and prints times, communication volumes and the
per-rank breakdown.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import SimulatedCluster, make_algorithm, load_dataset
from repro.analysis import breakdown_table, format_table, mebibytes, seconds
from repro.sparse import local_spgemm

NPROCS = 16


def main() -> None:
    # 1. Build a clustered input (hv15r-like; use your own matrix via
    #    repro.matrices.read_matrix_market or repro.sparse.as_csc).
    A = load_dataset("hv15r", scale=0.5)
    print(f"input: {A.nrows} x {A.ncols}, {A.nnz} nonzeros")

    # 2. Run the sparsity-aware 1D algorithm (Algorithm 1 + block fetch).
    cluster = SimulatedCluster(NPROCS)
    one_d = make_algorithm("1d", block_split=32).multiply(A, A, cluster)

    # 3. Run the 2D sparse SUMMA baseline on an identical cluster.
    baseline = make_algorithm("2d").multiply(A, A, SimulatedCluster(NPROCS))

    # 4. Check the two algorithms agree and against a purely local multiply.
    reference = local_spgemm(A, A)
    assert one_d.C.allclose(reference)
    assert baseline.C.allclose(reference)

    # 5. Report.
    rows = [
        {
            "algorithm": res.algorithm,
            "modelled time": seconds(res.elapsed_time),
            "comm volume": mebibytes(res.communication_volume),
            "messages": res.message_count,
            "load imbalance": f"{res.load_imbalance:.2f}",
        }
        for res in (one_d, baseline)
    ]
    print(format_table(rows, title=f"\nsquaring on {NPROCS} simulated processes"))
    print()
    print(breakdown_table(one_d, title="sparsity-aware 1D: per-rank breakdown"))
    print(
        f"\nCV/memA of this input: {one_d.info['cv_over_memA']:.3f} "
        f"(paper's rule: partition first if it exceeds ~0.30)"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Permutation study: when does graph partitioning pay off for 1D SpGEMM?

Sweeps the four ordering strategies (none / random / METIS-like / RCM) over a
clustered input (hv15r-like) and a scattered one (eukarya-like), printing the
communication volume, message counts and modelled time of the sparsity-aware
1D algorithm for each — the decision §V-A of the paper is about.

Run with:  python examples/permutation_study.py
"""

from __future__ import annotations

from repro import load_dataset
from repro.analysis import format_table, mebibytes, seconds
from repro.apps.squaring import PERMUTATION_STRATEGIES, run_squaring

NPROCS = 16


def study(dataset: str, scale: float) -> None:
    A = load_dataset(dataset, scale=scale)
    rows = []
    for strategy in PERMUTATION_STRATEGIES:
        run = run_squaring(
            A,
            algorithm="1d",
            strategy=strategy,
            nprocs=NPROCS,
            block_split=32,
            dataset=dataset,
            seed=0,
        )
        rows.append(
            {
                "strategy": strategy,
                "CV/memA": f"{run.cv_over_mema:.3f}",
                "comm volume": mebibytes(run.result.communication_volume),
                "RDMA msgs": run.result.rdma_gets,
                "kernel time": seconds(run.spgemm_time),
                "kernel+perm": seconds(run.total_time_with_permutation),
            }
        )
    print(format_table(rows, title=f"\n{dataset} (n={A.nrows}, nnz={A.nnz}, P={NPROCS})"))


def main() -> None:
    study("hv15r", scale=0.5)     # clustered: keep the natural ordering
    study("eukarya", scale=0.25)  # scattered: partition first
    print(
        "\nTakeaway (paper §V-A): keep the original ordering when the matrix is already\n"
        "clustered; apply the METIS-like partitioner when CV/memA exceeds ~30%."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Masked SpGEMM workloads: triangle counting and Markov clustering.

Counts the triangles of a community graph with the masked multiply
``(L·L) ⊙ L`` — the mask is resident in the output layout, so masking is
rank-local and charges no communication — then clusters the same graph
with full MCL (expansion → inflation → pruning to convergence) on the
resident pipeline.

Run with:  PYTHONPATH=src python examples/masked_workloads.py
"""

from __future__ import annotations

from repro.analysis import format_table, mebibytes, seconds
from repro.apps.mcl import run_mcl
from repro.apps.triangles import run_triangles
from repro.matrices import load_dataset

NPROCS = 8


def main() -> None:
    A = load_dataset("eukarya", scale=0.25)
    print(f"input: {A.nrows} x {A.ncols}, {A.nnz} nonzeros")

    # 1. Triangle counting, late vs early masking (early prunes the 1D
    #    RDMA fetch plan against the mask's column support).
    rows = []
    for mode in ("late", "early"):
        tri = run_triangles(A, algorithm="1d", nprocs=NPROCS, mask_mode=mode)
        assert tri.matches_reference  # checked against scipy inside the run
        rows.append(
            {
                "mask mode": mode,
                "triangles": tri.triangles,
                "modelled time": seconds(tri.result.elapsed_time),
                "comm volume": mebibytes(tri.result.communication_volume),
                "messages": tri.result.message_count,
            }
        )
    print(format_table(rows, title=f"\ntriangle counting on {NPROCS} processes"))

    # 2. Markov clustering to convergence on the resident pipeline.
    mcl = run_mcl(A, nprocs=NPROCS, inflation=2.0, max_iterations=40)
    print(
        f"\nMCL: {'converged' if mcl.converged else 'did not converge'} in "
        f"{mcl.n_iterations} iterations -> {mcl.n_clusters} clusters "
        f"(chaos {mcl.final_chaos:.2e})"
    )
    expand = [it for it in mcl.iterations if it.phase == "expand"]
    rows = [
        {
            "iteration": it.iteration,
            "time": seconds(it.time),
            "volume": mebibytes(it.volume),
            "nnz after expand": it.nnz,
        }
        for it in expand[:5]
    ]
    print(format_table(rows, title="first expansion iterations"))
    assert mcl.converged and mcl.conserved


if __name__ == "__main__":
    main()

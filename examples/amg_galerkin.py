#!/usr/bin/env python
"""AMG example: build a restriction operator with MIS-2 aggregation and form RᵀAR.

Reproduces the workflow of the paper's §IV-B on a queen_4147-like stiffness
matrix: distance-2 MIS → aggregation → restriction operator R (one nonzero
per row, Table III) → RᵀA with the sparsity-aware 1D algorithm →
(RᵀA)R with the outer-product 1D algorithm (Algorithm 3).

Run with:  python examples/amg_galerkin.py
"""

from __future__ import annotations

from repro import load_dataset
from repro.analysis import format_table, seconds
from repro.apps.amg import build_restriction, galerkin_product
from repro.sparse import local_spgemm
from repro.sparse.ops import transpose

NPROCS = 16


def main() -> None:
    A = load_dataset("queen", scale=0.5)
    print(f"fine-grid operator: {A.nrows} x {A.ncols}, {A.nnz} nonzeros")

    # Restriction operator from MIS-2 aggregation (Table III structure).
    restriction = build_restriction(A, seed=0)
    print(
        f"restriction operator R: {restriction.R.nrows} x {restriction.R.ncols}, "
        f"{restriction.R.nnz} nonzeros (exactly one per row), "
        f"coarsening factor {restriction.n_fine / restriction.n_coarse:.1f}x"
    )

    # Full Galerkin product; each SpGEMM gets its own simulated cluster.
    galerkin = galerkin_product(
        A,
        restriction=restriction,
        left_algorithm="1d",            # RᵀA  (Fig 10/11)
        right_algorithm="outer-product",  # (RᵀA)R  (Fig 12)
        nprocs=NPROCS,
    )

    # Verify against a single-process reference.
    reference = local_spgemm(local_spgemm(transpose(restriction.R), A), restriction.R)
    assert galerkin.coarse.allclose(reference)

    rows = [
        {
            "step": "RtA (sparsity-aware 1D)",
            "time": seconds(galerkin.left.elapsed_time),
            "volume (B)": galerkin.left.communication_volume,
        },
        {
            "step": "(RtA)R (outer-product 1D)",
            "time": seconds(galerkin.right.elapsed_time),
            "volume (B)": galerkin.right.communication_volume,
        },
    ]
    print(format_table(rows, title=f"\nGalerkin product on {NPROCS} simulated processes"))
    print(
        f"\ncoarse operator: {galerkin.coarse.nrows} x {galerkin.coarse.ncols}, "
        f"{galerkin.coarse.nnz} nonzeros; total modelled time {seconds(galerkin.total_time)}"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python
"""Betweenness-centrality example: batched approximate Brandes on SpGEMM.

Reproduces the paper's §IV-C workflow on an eukarya-like community graph:
because the natural vertex labelling carries no locality (CV/memA ≈ 1), the
graph is first partitioned with the METIS-like multilevel partitioner using
flops-proportional vertex weights; the batched multi-source BFS forward
search and the backward sweep then run their SpGEMMs through the
sparsity-aware 1D algorithm, and the per-iteration times/volumes are printed
(the series of Figs 13–14).

Run with:  python examples/betweenness_centrality.py
"""

from __future__ import annotations

import numpy as np

from repro import load_dataset, should_partition
from repro.analysis import format_table, mebibytes, seconds
from repro.apps.bc import batched_betweenness_centrality
from repro.partition import apply_ordering, ordering_from_partition, partition_matrix

NPROCS = 8
NUM_SOURCES = 32
BATCH_SIZE = 16


def main() -> None:
    A = load_dataset("eukarya", scale=0.2)
    print(f"graph: {A.nrows} vertices, {A.nnz} edges (directed entries)")

    # The paper's §V-A criterion: partition first if CV/memA exceeds ~30%.
    partition_first, ratio = should_partition(A, nprocs=NPROCS)
    print(f"CV/memA = {ratio:.2f} -> {'apply' if partition_first else 'skip'} graph partitioning")
    if partition_first:
        ordering = ordering_from_partition(partition_matrix(A, NPROCS, seed=0))
        A = apply_ordering(A, ordering)

    result = batched_betweenness_centrality(
        A,
        num_sources=NUM_SOURCES,
        batch_size=BATCH_SIZE,
        algorithm="1d",
        nprocs=NPROCS,
        seed=1,
    )

    rows = [
        {
            "phase": rec.phase,
            "iteration": rec.iteration,
            "modelled time": seconds(rec.modelled_time),
            "volume": mebibytes(rec.communication_volume),
            "frontier nnz": rec.frontier_nnz,
        }
        for rec in result.iterations
    ]
    print(format_table(rows, title="\nper-iteration SpGEMM of the first batches"))
    print(
        f"\nforward search: {seconds(result.forward_time)}, "
        f"backward sweep: {seconds(result.backward_time)}"
    )
    top = np.argsort(result.scores)[::-1][:5]
    print("top-5 vertices by (approximate) betweenness centrality:")
    for v in top:
        print(f"  vertex {v}: score {result.scores[v]:.1f}")


if __name__ == "__main__":
    main()

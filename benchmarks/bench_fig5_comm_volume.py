"""Figure 5 — communication-volume comparison of permutation strategies.

The paper reports ≈96% volume reduction from choosing the right permutation
(natural order for hv15r, METIS for eukarya) relative to random permutation.
Runs through the experiment engine: each (dataset, strategy) point is a
``RunConfig``, executed fan-out-parallel and cached in the shared JSONL
trajectory, and the asserted volumes come from the persisted records.
"""

from __future__ import annotations

from repro.analysis import format_table, mebibytes
from repro.experiments import RunConfig

from common import BLOCK_SPLIT, SCALE, assert_record_conserved, header, run_bench_grid

NPROCS = 16


def _configs():
    cases = (
        ("hv15r", SCALE, ("random", "none")),
        ("eukarya", max(0.1, SCALE / 2), ("random", "none", "metis")),
    )
    return [
        RunConfig(
            dataset=dataset,
            algorithm="1d",
            strategy=strategy,
            nprocs=NPROCS,
            block_split=BLOCK_SPLIT,
            seed=0,
            scale=scale,
        )
        for dataset, scale, strategies in cases
        for strategy in strategies
    ]


def _run():
    result = run_bench_grid(_configs())
    rows = []
    volumes = {}
    for record in result.records:
        assert_record_conserved(record)
        key = (record.config.dataset, record.config.strategy)
        volumes[key] = record.communication_volume
        rows.append(
            {
                "dataset": record.config.dataset,
                "strategy": record.config.strategy,
                "volume": mebibytes(record.communication_volume),
                "CV/memA": f"{record.cv_over_mema:.3f}",
            }
        )
    return rows, volumes


def test_fig5_communication_volume(benchmark):
    rows, volumes = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 5: communication volume by permutation strategy (1D, P=16)")
    print(format_table(rows))
    hv_reduction = 1 - volumes[("hv15r", "none")] / volumes[("hv15r", "random")]
    eu_reduction = 1 - volumes[("eukarya", "metis")] / volumes[("eukarya", "random")]
    print(f"hv15r  volume reduction (none   vs random): {hv_reduction:.1%} (paper: ~96%)")
    print(f"eukarya volume reduction (metis vs random): {eu_reduction:.1%} (paper: ~96%)")
    assert hv_reduction > 0.6
    assert eu_reduction > 0.2

"""Figure 5 — communication-volume comparison of permutation strategies.

The paper reports ≈96% volume reduction from choosing the right permutation
(natural order for hv15r, METIS for eukarya) relative to random permutation.
"""

from __future__ import annotations

from repro.analysis import format_table, mebibytes
from repro.apps.squaring import run_squaring
from repro.matrices import load_dataset

from common import BLOCK_SPLIT, SCALE, assert_conserved, header

NPROCS = 16


def _run():
    rows = []
    hv = load_dataset("hv15r", scale=SCALE)
    eu = load_dataset("eukarya", scale=max(0.1, SCALE / 2))
    volumes = {}
    for dataset, matrix, strategies in (
        ("hv15r", hv, ("random", "none")),
        ("eukarya", eu, ("random", "none", "metis")),
    ):
        for strategy in strategies:
            run = run_squaring(
                matrix, algorithm="1d", strategy=strategy, nprocs=NPROCS,
                block_split=BLOCK_SPLIT, dataset=dataset, seed=0,
            )
            assert_conserved(run)
            volumes[(dataset, strategy)] = run.result.communication_volume
            rows.append(
                {
                    "dataset": dataset,
                    "strategy": strategy,
                    "volume": mebibytes(run.result.communication_volume),
                    "CV/memA": f"{run.cv_over_mema:.3f}",
                }
            )
    return rows, volumes


def test_fig5_communication_volume(benchmark):
    rows, volumes = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 5: communication volume by permutation strategy (1D, P=16)")
    print(format_table(rows))
    hv_reduction = 1 - volumes[("hv15r", "none")] / volumes[("hv15r", "random")]
    eu_reduction = 1 - volumes[("eukarya", "metis")] / volumes[("eukarya", "random")]
    print(f"hv15r  volume reduction (none   vs random): {hv_reduction:.1%} (paper: ~96%)")
    print(f"eukarya volume reduction (metis vs random): {eu_reduction:.1%} (paper: ~96%)")
    assert hv_reduction > 0.6
    assert eu_reduction > 0.2

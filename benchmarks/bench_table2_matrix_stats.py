"""Table II — statistics of the input matrices (and their synthetic analogues)."""

from __future__ import annotations

from repro.analysis import format_table
from repro.matrices import DATASETS, load_dataset, matrix_stats

from common import SCALE, header


def _build_rows():
    rows = []
    for name, spec in DATASETS.items():
        A = load_dataset(name, scale=SCALE)
        stats = matrix_stats(A, name)
        row = stats.as_row()
        row["paper rows"] = spec.paper_nrows
        row["paper nnz"] = spec.paper_nnz
        rows.append(row)
    return rows


def test_table2_matrix_stats(benchmark):
    rows = benchmark.pedantic(_build_rows, rounds=1, iterations=1)
    header("Table II: statistics of the sparse matrices (synthetic analogues)")
    print(format_table(rows))
    # Structural expectations from the paper's Table II.
    by_name = {r["matrix"]: r for r in rows}
    assert by_name["queen"]["symmetric"] == "Yes"
    assert by_name["eukarya"]["symmetric"] == "Yes"
    assert by_name["nlpkkt"]["symmetric"] == "Yes"
    assert by_name["hv15r"]["symmetric"] == "No"
    assert by_name["stokes"]["symmetric"] == "No"

"""Figures 13–14 — betweenness centrality: per-iteration SpGEMM of the first batch.

Fig 13 uses eukarya (where the 1D algorithm needs METIS partitioning), Fig 14
uses hv15r (natural ordering).  The harness prints the per-iteration forward
search and backward sweep times/volumes for each algorithm, the series the
paper plots.  Partitioning time is excluded, as in the paper (§IV-C explains
it amortises over tens of thousands of SpGEMMs).

Every (dataset, algorithm, strategy) point is one ``bc`` workload config of
the experiment engine: the METIS/none ordering choice is the config's
``strategy``, the deterministic source set (vertices 0, 4, 8, …) is
``bc_sources``/``bc_source_stride``, and the per-iteration series asserted
below comes from the persisted ``record.bc`` rather than an in-process run.
"""

from __future__ import annotations

from repro.analysis import format_table, mebibytes, seconds
from repro.experiments import RunConfig

from common import SCALE, assert_record_conserved, header, run_bench_grid

NPROCS = 4
BATCH = 16


def _bc_config(dataset, scale, algorithm, strategy="none"):
    return RunConfig(
        dataset=dataset,
        workload="bc",
        algorithm=algorithm,
        strategy=strategy,
        nprocs=NPROCS,
        seed=0,
        scale=scale,
        bc_sources=BATCH,
        bc_batch=BATCH,
        bc_source_stride=4,
    )


def _iteration_rows(record, label):
    rows = []
    for it in record.bc.iterations:
        rows.append(
            {
                "algorithm": label,
                "phase": it.phase,
                "iter": it.iteration,
                "time": seconds(it.time),
                "volume": mebibytes(it.volume),
                "frontier nnz": it.frontier_nnz,
            }
        )
    return rows


def _summary_rows(records):
    return [
        {
            "algorithm": label,
            "forward": seconds(record.bc.forward_time),
            "backward": seconds(record.bc.backward_time),
            "total": seconds(record.elapsed_time),
            "total volume": mebibytes(record.communication_volume),
        }
        for label, record in records.items()
    ]


def test_fig13_bc_eukarya(benchmark):
    scale = max(0.1, SCALE / 2)
    cases = (
        ("1d+metis", _bc_config("eukarya", scale, "1d", strategy="metis")),
        ("1d+none", _bc_config("eukarya", scale, "1d")),
        ("2d", _bc_config("eukarya", scale, "2d")),
        ("3d", _bc_config("eukarya", scale, "3d")),
    )

    def _run():
        result = run_bench_grid([config for _, config in cases])
        return {label: record for (label, _), record in zip(cases, result.records)}

    records = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 13: BC forward search + backward sweep on eukarya (first batch)")
    rows = []
    for label, record in records.items():
        assert_record_conserved(record)
        rows.extend(_iteration_rows(record, label))
    print(format_table(rows))
    print(format_table(_summary_rows(records), title="summary"))
    # The paper's qualitative finding reproduced at this scale: METIS
    # partitioning reduces the 1D algorithm's fetch volume on eukarya.
    assert records["1d+metis"].communication_volume < records["1d+none"].communication_volume


def test_fig14_bc_hv15r(benchmark):
    cases = (
        ("1d", _bc_config("hv15r", SCALE, "1d")),
        ("3d", _bc_config("hv15r", SCALE, "3d")),
        ("2d", _bc_config("hv15r", SCALE, "2d")),
    )

    def _run():
        result = run_bench_grid([config for _, config in cases])
        return {label: record for (label, _), record in zip(cases, result.records)}

    records = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 14: BC forward search + backward sweep on hv15r (first batch)")
    for record in records.values():
        assert_record_conserved(record)
    print(format_table(_summary_rows(records), title="summary"))
    # The 1D algorithm moves several times less data than the 2D/3D baselines
    # on this clustered input (the paper reports a 3.5x time win at scale,
    # with the 2D variant running out of memory in the backward sweep).
    vol = {label: record.communication_volume for label, record in records.items()}
    assert vol["1d"] * 2 < vol["2d"]
    assert vol["1d"] * 2 < vol["3d"]

"""Figures 13–14 — betweenness centrality: per-iteration SpGEMM of the first batch.

Fig 13 uses eukarya (where the 1D algorithm needs METIS partitioning), Fig 14
uses hv15r (natural ordering).  The harness prints the per-iteration forward
search and backward sweep times/volumes for each algorithm, the series the
paper plots.  Partitioning time is excluded, as in the paper (§IV-C explains
it amortises over tens of thousands of SpGEMMs).
"""

from __future__ import annotations

from repro.analysis import format_table, mebibytes, seconds
from repro.apps.bc import batched_betweenness_centrality
from repro.matrices import load_dataset
from repro.partition import apply_ordering, ordering_from_partition, partition_matrix

from common import SCALE, header

NPROCS = 4
BATCH = 16


def _run_bc(matrix, algorithm):
    sources = list(range(0, 4 * BATCH, 4))
    return batched_betweenness_centrality(
        matrix, sources=sources, batch_size=BATCH, algorithm=algorithm, nprocs=NPROCS
    )


def _iteration_rows(result, label):
    rows = []
    for rec in result.iterations:
        rows.append(
            {
                "algorithm": label,
                "phase": rec.phase,
                "iter": rec.iteration,
                "time": seconds(rec.modelled_time),
                "volume": mebibytes(rec.communication_volume),
                "frontier nnz": rec.frontier_nnz,
            }
        )
    return rows


def test_fig13_bc_eukarya(benchmark):
    def _run():
        A = load_dataset("eukarya", scale=max(0.1, SCALE / 2))
        ordering = ordering_from_partition(partition_matrix(A, NPROCS, seed=0))
        A_metis = apply_ordering(A, ordering)
        return {
            "1d+metis": _run_bc(A_metis, "1d"),
            "1d+none": _run_bc(A, "1d"),
            "2d": _run_bc(A, "2d"),
            "3d": _run_bc(A, "3d"),
        }

    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 13: BC forward search + backward sweep on eukarya (first batch)")
    rows = []
    for label, res in results.items():
        rows.extend(_iteration_rows(res, label))
    print(format_table(rows))
    summary = [
        {
            "algorithm": label,
            "forward": seconds(res.forward_time),
            "backward": seconds(res.backward_time),
            "total": seconds(res.total_time),
            "total volume": mebibytes(sum(r.communication_volume for r in res.iterations)),
        }
        for label, res in results.items()
    ]
    print(format_table(summary, title="summary"))
    # The paper's qualitative finding reproduced at this scale: METIS
    # partitioning reduces the 1D algorithm's fetch volume on eukarya.
    vol_metis = sum(r.communication_volume for r in results["1d+metis"].iterations)
    vol_none = sum(r.communication_volume for r in results["1d+none"].iterations)
    assert vol_metis < vol_none


def test_fig14_bc_hv15r(benchmark):
    def _run():
        A = load_dataset("hv15r", scale=SCALE)
        return {
            "1d": _run_bc(A, "1d"),
            "3d": _run_bc(A, "3d"),
            "2d": _run_bc(A, "2d"),
        }

    results = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 14: BC forward search + backward sweep on hv15r (first batch)")
    summary = [
        {
            "algorithm": label,
            "forward": seconds(res.forward_time),
            "backward": seconds(res.backward_time),
            "total": seconds(res.total_time),
            "total volume": mebibytes(sum(r.communication_volume for r in res.iterations)),
        }
        for label, res in results.items()
    ]
    print(format_table(summary, title="summary"))
    # The 1D algorithm moves several times less data than the 2D/3D baselines
    # on this clustered input (the paper reports a 3.5x time win at scale,
    # with the 2D variant running out of memory in the backward sweep).
    vol = {
        label: sum(r.communication_volume for r in res.iterations)
        for label, res in results.items()
    }
    assert vol["1d"] * 2 < vol["2d"]
    assert vol["1d"] * 2 < vol["3d"]

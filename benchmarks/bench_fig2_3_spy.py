"""Figures 2–3 — nonzero-structure visualisation of nlpkkt200 and hv15r.

The paper shows spy plots establishing that the nonzeros are clustered but
not simply banded/block-diagonal; here the same information is printed as a
text-mode density grid plus clustering diagnostics.
"""

from __future__ import annotations

from repro.analysis import format_grid
from repro.matrices import load_dataset, matrix_stats, spy_histogram

from common import SCALE, header


def _build():
    out = {}
    for name in ("nlpkkt", "hv15r"):
        A = load_dataset(name, scale=SCALE)
        out[name] = (spy_histogram(A, bins=28), matrix_stats(A, name))
    return out


def test_fig2_3_spy_plots(benchmark):
    grids = benchmark.pedantic(_build, rounds=1, iterations=1)
    for name, (grid, stats) in grids.items():
        header(f"Figure {'2' if name == 'nlpkkt' else '3'}: {name} structure")
        print(format_grid(grid))
        print(
            f"near-diagonal nnz fraction: {stats.near_diagonal_fraction:.3f}  "
            f"(clustered inputs have most mass near the diagonal)"
        )
        # Both matrices are in the clustered regime.
        assert stats.near_diagonal_fraction > 0.5

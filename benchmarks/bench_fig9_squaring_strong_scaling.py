"""Figure 9 — strong scaling of squaring: 1D vs 2D vs 3D on four datasets.

For every dataset the harness prints one row per (algorithm, process count)
with modelled time, time including permutation, volume and messages — the
series Fig 9 plots.  The paper's protocol is followed: no permutation for the
sparsity-aware 1D algorithm, random permutation for 2D/3D (reported with and
without its cost), best layer count for 3D.  All points of a dataset run
through the experiment engine as one grid — fanned out over workers, cached
in the shared JSONL trajectory, deterministic across serial/parallel runs.
"""

from __future__ import annotations

import pytest

from repro.analysis import ScalingPoint, format_table
from repro.experiments import RunConfig

from common import (
    BLOCK_SPLIT,
    PROCESS_COUNTS,
    SCALE,
    SCALING_DATASETS,
    assert_record_conserved,
    header,
    run_bench_grid,
)

ALGORITHMS = (
    ("1d", "none"),
    ("2d", "random"),
    ("3d", "random"),
)


def _configs(dataset: str):
    return [
        RunConfig(
            dataset=dataset,
            algorithm=algorithm,
            strategy=strategy,
            nprocs=p,
            block_split=BLOCK_SPLIT,
            scale=SCALE,
        )
        for algorithm, strategy in ALGORITHMS
        for p in PROCESS_COUNTS
    ]


def _sweep(dataset: str):
    result = run_bench_grid(_configs(dataset))
    rows = []
    winners = {}
    for record in result.records:
        assert_record_conserved(record)
        point = ScalingPoint.from_record(record)
        rows.append(point.as_row())
        winners.setdefault(point.nprocs, []).append(
            (point.elapsed_time, point.communication_volume, point.algorithm)
        )
    return rows, winners


@pytest.mark.parametrize("dataset", SCALING_DATASETS)
def test_fig9_squaring_strong_scaling(benchmark, dataset):
    rows, winners = benchmark.pedantic(_sweep, args=(dataset,), rounds=1, iterations=1)
    header(f"Figure 9: strong scaling of squaring on {dataset}")
    print(format_table(rows))
    # The robust, size-independent part of the paper's claim: on clustered
    # inputs the 1D algorithm moves the least data at every process count.
    # The modelled-time ordering (paper: 1D up to an order of magnitude
    # faster on hv15r/queen) holds for the larger-scale runs
    # (REPRO_BENCH_SCALE >= 1); at the default reduced scale small fixed
    # latency terms can flip individual points, so time winners are reported
    # but only the volume ordering is asserted (see EXPERIMENTS.md).
    time_wins = 0
    for nprocs, entries in sorted(winners.items()):
        best_time, _, best_algo = min(entries)
        least_volume_algo = min(entries, key=lambda e: e[1])[2]
        print(
            f"P={nprocs}: fastest = {best_algo} ({best_time:.6f} s), "
            f"least volume = {least_volume_algo}"
        )
        if best_algo == "1d-sparsity-aware":
            time_wins += 1
        assert least_volume_algo == "1d-sparsity-aware", (
            f"{dataset} at P={nprocs}: expected the 1D algorithm to move the least data"
        )
    print(f"1D fastest at {time_wins}/{len(winners)} process counts (modelled time)")

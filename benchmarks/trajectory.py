"""Roll the shared benchmark record store up into a ``BENCH_PRn.json``.

The migrated benchmark harness persists every engine record to one JSONL
trajectory (``benchmarks/results/records.jsonl``, see ``common.py``).  This
script aggregates that store into the committed per-PR perf snapshot::

    PYTHONPATH=src python -m pytest benchmarks -q     # populate the store
    PYTHONPATH=src python benchmarks/trajectory.py --out BENCH_PR3.json

Modelled counters in the output are deterministic and comparable across
machines and PRs; the machine tag and wall-clock only describe where the
snapshot was taken.  ``python -m repro bench`` produces the same document
from the built-in representative grid instead of the full harness store.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.experiments import ResultStore, write_trajectory

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from common import RECORDS_PATH  # noqa: E402 — the harness's shared store path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="aggregate engine records into a BENCH_*.json trajectory"
    )
    parser.add_argument("--records", default=RECORDS_PATH,
                        help="JSONL record store to roll up")
    parser.add_argument("--out", required=True,
                        help="path of the trajectory JSON to write")
    parser.add_argument("--label", default=None,
                        help="trajectory label (default: the --out file stem)")
    parser.add_argument("--kernel-walls", default=None,
                        help="kernel_walls JSON fragment (from kernel_walls.py) "
                             "to embed as the document's kernel_walls section")
    parser.add_argument("--sweep-throughput", default=None,
                        help="sweep_throughput JSON fragment (from "
                             "bench_sweep_throughput.py) to embed as the "
                             "document's sweep_throughput section")
    args = parser.parse_args(argv)

    store = ResultStore(args.records)
    if not store.exists():
        print(f"no record store at {args.records}; run the benchmarks first",
              file=sys.stderr)
        return 2
    # Deduplicated (last write wins), in deterministic hash order.
    loaded = store.load()
    records = [loaded[h] for h in sorted(loaded)]
    if not records:
        print(f"record store at {args.records} holds no parseable records",
              file=sys.stderr)
        return 2
    extra = {}
    for section, path in (("kernel_walls", args.kernel_walls),
                          ("sweep_throughput", args.sweep_throughput)):
        if not path:
            continue
        try:
            fragment = json.loads(
                pathlib.Path(path).read_text(encoding="utf-8")
            )
        except (OSError, json.JSONDecodeError) as exc:
            print(f"cannot load {section} fragment: {exc}", file=sys.stderr)
            return 2
        extra[section] = fragment
    extra = extra or None
    label = args.label or pathlib.Path(args.out).stem
    document = write_trajectory(args.out, records, label=label, extra_sections=extra)
    workloads = ", ".join(
        f"{name}={agg['configs']}" for name, agg in document["workloads"].items()
    )
    print(f"{args.out}: {document['total_records']} records ({workloads}), "
          f"all_conserved={document['all_conserved']}")
    if "kernel_walls" in document:
        speedups = document["kernel_walls"].get("speedup_vs_python", {})
        pretty = ", ".join(f"{v}={s}x" for v, s in sorted(speedups.items()))
        print(f"kernel walls embedded ({pretty or 'no speedups'})")
    if "sweep_throughput" in document:
        frag = document["sweep_throughput"]
        print(f"sweep throughput embedded "
              f"(resident speedup {frag.get('speedup_resident', '?')}x, "
              f"store_identical={frag.get('store_identical', '?')})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Modelled-vs-measured backend validation: same runs, two backends.

The simulated backend *models* every transfer (α–β–γ seconds, exact payload
bytes); the shm backend physically *moves* every remote payload through
POSIX shared memory between processes while keeping the same modelled
ledger.  This harness pins the contract between the two:

* every one of the six SpGEMM drivers (1d, 2d, 3d, outer-product and both
  block-row variants) produces a **bit-identical** result matrix C
  (indptr, indices *and* values) on both backends;
* the modelled counters — time, volume, messages — are identical, because
  the shm communicator delegates all accounting to the simulated one;
* the application-level answers agree: the triangle count and the MCL
  cluster count are the same numbers under both backends;
* the shm backend's measured byte ledger is conserved (every byte received
  was sent) and its per-phase rows line up with the modelled phases —
  printed side by side as the modelled-vs-measured table.

Run directly (``--out`` writes the JSON artifact CI uploads)::

    PYTHONPATH=src python benchmarks/bench_backend_validation.py \
        --out backend-validation.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.analysis import format_table, mebibytes, seconds
from repro.apps.mcl import run_mcl
from repro.apps.triangles import run_triangles
from repro.core import make_algorithm
from repro.matrices import load_dataset
from repro.runtime import available_backends, create_cluster

from common import SCALE, header

#: the six distributed drivers the backend contract covers
DRIVERS = (
    "1d",
    "2d",
    "3d",
    "outer-product",
    "1d-naive-block-row",
    "1d-improved-block-row",
)

NPROCS = 4
DATASET = "hv15r"


def _square(A, algorithm: str, backend: str):
    """A·A under one driver on one backend; returns (C, result, measured)."""
    cluster = create_cluster(NPROCS, backend=backend, name=DATASET)
    try:
        result = make_algorithm(algorithm).multiply(A, A, cluster)
        return result.C, result, cluster.measured_ledger
    finally:
        cluster.shutdown()


def _assert_bit_identical(C_sim, C_shm, algorithm: str) -> None:
    for attr in ("indptr", "indices", "data"):
        a = getattr(C_sim, attr)
        b = getattr(C_shm, attr)
        if not np.array_equal(a, b):
            raise AssertionError(
                f"{algorithm}: C.{attr} differs between the simulated and "
                "shm backends — the physical transport corrupted a payload"
            )


def validate_drivers(A) -> list:
    """Bit-identical C + identical modelled counters across all six drivers."""
    rows = []
    for algorithm in DRIVERS:
        t0 = time.perf_counter()
        C_sim, r_sim, m_sim = _square(A, algorithm, "simulated")
        C_shm, r_shm, m_shm = _square(A, algorithm, "shm")
        assert m_sim is None, "simulated backend grew a measured ledger"
        assert m_shm is not None and m_shm.is_conserved(), (
            f"{algorithm}: shm measured ledger lost bytes"
        )
        _assert_bit_identical(C_sim, C_shm, algorithm)
        for counter in ("elapsed_time", "communication_volume", "message_count"):
            a, b = getattr(r_sim, counter), getattr(r_shm, counter)
            assert a == b, f"{algorithm}: modelled {counter} drifted: {a} != {b}"
        rows.append(
            {
                "driver": algorithm,
                "C nnz": C_sim.nnz,
                "modelled time": seconds(r_sim.elapsed_time),
                "modelled volume": mebibytes(r_sim.communication_volume),
                "measured bytes": m_shm.total_bytes(),
                "transfers": m_shm.total_transfers(),
                "host (s)": f"{time.perf_counter() - t0:.2f}",
            }
        )
    return rows


def validate_applications(A) -> dict:
    """Triangle and MCL answers must be backend-invariant."""
    tri = {
        b: run_triangles(A, algorithm="1d", nprocs=NPROCS, dataset=DATASET,
                         block_split=32, backend=b)
        for b in ("simulated", "shm")
    }
    assert tri["simulated"].triangles == tri["shm"].triangles, (
        "triangle counts differ across backends: "
        f"{tri['simulated'].triangles} != {tri['shm'].triangles}"
    )
    mcl = {
        b: run_mcl(A, algorithm="1d", nprocs=NPROCS, dataset=DATASET,
                   block_split=32, max_iterations=10, backend=b)
        for b in ("simulated", "shm")
    }
    assert mcl["simulated"].n_clusters == mcl["shm"].n_clusters, (
        "MCL cluster counts differ across backends: "
        f"{mcl['simulated'].n_clusters} != {mcl['shm'].n_clusters}"
    )
    return {
        "triangles": tri["simulated"].triangles,
        "mcl_clusters": mcl["simulated"].n_clusters,
        "mcl_iterations": mcl["simulated"].n_iterations,
    }


def phase_table(A) -> list:
    """Per-phase modelled-vs-measured rows for one representative 1d run."""
    cluster = create_cluster(NPROCS, backend="shm", name=DATASET)
    try:
        make_algorithm("1d").multiply(A, A, cluster)
        modelled = cluster.ledger
        measured = cluster.measured_ledger
    finally:
        cluster.shutdown()
    rows = []
    for name in modelled.phase_order:
        mod = modelled.subset(name)
        mea = measured.phases.get(name)
        rows.append(
            {
                "phase": name,
                "modelled time": seconds(mod.elapsed_time()),
                "modelled bytes": mod.total_bytes(),
                "measured wall": (
                    seconds(mea.wall_seconds + mea.transfer_seconds)
                    if mea is not None else "-"
                ),
                "measured bytes": int(mea.bytes_received.sum()) if mea is not None else 0,
                "transfers": mea.transfers if mea is not None else 0,
            }
        )
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="validate the shm backend against the simulated one"
    )
    parser.add_argument("--out", default=None,
                        help="write the validation summary JSON here")
    parser.add_argument("--scale", type=float, default=min(SCALE, 0.2),
                        help="dataset scale factor")
    args = parser.parse_args(argv)

    assert "shm" in available_backends(), available_backends()
    A = load_dataset(DATASET, scale=args.scale)

    header("backend validation: six drivers, bit-identical C (simulated vs shm)")
    driver_rows = validate_drivers(A)
    print(format_table(driver_rows, title="drivers"))

    header("backend validation: application answers")
    answers = validate_applications(A)
    print(f"triangles: {answers['triangles']}   "
          f"mcl clusters: {answers['mcl_clusters']} "
          f"({answers['mcl_iterations']} iterations)   identical on both backends")

    header("modelled vs measured, per phase (1d squaring on shm)")
    phases = phase_table(A)
    print(format_table(phases, title="phases"))

    if args.out:
        artifact = {
            "dataset": DATASET,
            "scale": args.scale,
            "nprocs": NPROCS,
            "drivers": driver_rows,
            "applications": answers,
            "phases": phases,
            "backends": available_backends(),
        }
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(artifact, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"\nvalidation artifact written to {args.out}")

    print("\nbackend validation passed: identical results, conserved transfers")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Cold vs resident multi-driver sweep throughput (the operand plane).

Times the same multi-driver grid three ways and writes a JSON fragment for
``trajectory.py --sweep-throughput`` / the CI residency gate:

1. **serial** — ``run_grid(workers=0, force=True)`` into a fresh store: the
   pre-operand-plane baseline (every driver rebuilds its operands).
2. **pool cold** — a fresh :class:`Scheduler` with ``--workers`` persistent
   workers runs the grid once: parallel fan-out, but every worker builds
   its resident operands for the first time (shm transport saves only the
   dataset loads).
3. **resident** — the *same* scheduler runs the grid again (``force=True``):
   affinity routing sends each config back to the worker whose
   ``OperandCache`` already holds its ``DistributedOperand`` layout, so the
   pass measures pure residency benefit.

Each measured phase runs in its own subprocess so OS-level and in-process
caches warmed by one phase cannot flatter another.  The parent then checks
the byte-identity contract: the pool store must equal the serial store
byte-for-byte, and the resident re-execution must append the exact same
bytes again (host-side caching never changes a record)::

    PYTHONPATH=src python benchmarks/bench_sweep_throughput.py \
        --workers 2 --out sweep_throughput.json

Wall seconds are machine-dependent; the *ratios* are what the gate
compares, because every phase runs on the same host in the same job.  The
issue's >=3x resident-vs-serial target presumes a >=4-core host, so the
fragment records ``target_applies`` (``cpu_count >= 4``) and ``--check``
only enforces the ratio when it is true — smaller hosts still enforce
byte-identity and residency hits.
"""

from __future__ import annotations

import argparse
import json
import multiprocessing
import pathlib
import subprocess
import sys
import tempfile
import time

MIN_SPEEDUP_TARGET = 3.0
MIN_TARGET_CORES = 4


def _configs(args):
    from repro.experiments import RunConfig

    datasets = [d.strip() for d in args.datasets.split(",") if d.strip()]
    algorithms = [
        ("1d", "none"),
        ("2d", "random"),
        ("3d", "random"),
    ]
    return [
        RunConfig(
            dataset=dataset,
            algorithm=algorithm,
            strategy=strategy,
            nprocs=args.nprocs,
            block_split=32,
            scale=args.scale,
        )
        for dataset in datasets
        for algorithm, strategy in algorithms
    ]


def _phase_serial(args) -> int:
    """Child process: time the serial cold baseline into ``--store``."""
    from repro.experiments import run_grid

    configs = _configs(args)
    start = time.perf_counter()
    result = run_grid(configs, workers=0, store=args.store, force=True)
    wall = time.perf_counter() - start
    payload = {
        "wall_seconds": wall,
        "records": len(result.records),
        "all_conserved": all(r.conserved for r in result.records),
    }
    pathlib.Path(args.out).write_text(json.dumps(payload), encoding="utf-8")
    return 0


def _phase_pool(args) -> int:
    """Child process: time cold then resident passes on one scheduler."""
    from repro.experiments.scheduler import Scheduler

    configs = _configs(args)
    start = time.perf_counter()
    scheduler = Scheduler(workers=args.workers, store=args.store)
    try:
        cold_records = scheduler.submit(configs, force=True).wait()
        cold_wall = time.perf_counter() - start

        start = time.perf_counter()
        resident_records = scheduler.submit(configs, force=True).wait()
        resident_wall = time.perf_counter() - start

        residency = scheduler.residency_stats()
        segments = (
            list(scheduler._transport.segment_names())
            if scheduler._transport is not None else []
        )
    finally:
        scheduler.shutdown()
    # The transport unlinks its segments at shutdown; any that still attach
    # afterwards would be leaked /dev/shm residue.
    from multiprocessing import shared_memory

    leaked = []
    for name in segments:
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        seg.close()
        leaked.append(name)
    payload = {
        "cold_wall_seconds": cold_wall,
        "resident_wall_seconds": resident_wall,
        "records": len(cold_records),
        "resident_records": len(resident_records),
        "all_conserved": all(r.conserved for r in cold_records),
        "residency": residency,
        "leaked_segments": leaked,
    }
    pathlib.Path(args.out).write_text(json.dumps(payload), encoding="utf-8")
    return 0


def _run_phase(phase: str, args, store: pathlib.Path, out: pathlib.Path) -> dict:
    cmd = [
        sys.executable, str(pathlib.Path(__file__).resolve()),
        "--phase", phase,
        "--store", str(store),
        "--out", str(out),
        "--datasets", args.datasets,
        "--nprocs", str(args.nprocs),
        "--scale", str(args.scale),
        "--workers", str(args.workers),
    ]
    proc = subprocess.run(cmd, stdout=subprocess.PIPE, stderr=subprocess.STDOUT)
    if proc.returncode != 0:
        sys.stderr.write(proc.stdout.decode(errors="replace"))
        raise SystemExit(f"{phase} phase failed (exit {proc.returncode})")
    return json.loads(out.read_text(encoding="utf-8"))


def _check(path: str) -> int:
    """Gate an existing fragment (or a trajectory embedding one)."""
    document = json.loads(pathlib.Path(path).read_text(encoding="utf-8"))
    fragment = document.get("sweep_throughput", document)
    failures = []
    if not fragment.get("store_identical"):
        failures.append("pool store is not byte-identical to the serial store")
    if fragment.get("leaked_segments"):
        failures.append(
            f"shm segments leaked at shutdown: {fragment['leaked_segments']}"
        )
    hits = fragment.get("residency", {}).get("hits", 0)
    if hits <= 0:
        failures.append("resident pass recorded no operand-cache hits")
    if fragment.get("target_applies"):
        speedup = fragment.get("speedup_resident", 0.0)
        target = fragment.get("min_speedup_target", MIN_SPEEDUP_TARGET)
        if speedup < target:
            failures.append(
                f"resident speedup {speedup}x below the {target}x target "
                f"(cpu_count={fragment.get('cpu_count')})"
            )
    label = fragment.get("speedup_resident", "?")
    if failures:
        for f in failures:
            print(f"FAIL: {f}", file=sys.stderr)
        return 1
    print(f"sweep throughput gate ok: resident speedup {label}x, "
          f"store_identical={fragment.get('store_identical')}, "
          f"residency hits={hits}, "
          f"target_applies={fragment.get('target_applies')}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="cold vs resident multi-driver sweep wall-clock"
    )
    parser.add_argument("--workers", type=int, default=2,
                        help="pool workers for the cold/resident phases")
    parser.add_argument("--datasets", default="queen,stokes,hv15r",
                        help="comma-separated dataset analogues in the grid")
    parser.add_argument("--nprocs", type=int, default=16,
                        help="simulated process count per driver")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="dataset scale factor")
    parser.add_argument("--out", default=None,
                        help="path of the sweep_throughput JSON fragment")
    parser.add_argument("--check", default=None, metavar="JSON",
                        help="gate an existing fragment (or BENCH_*.json "
                             "embedding one) instead of measuring")
    # internal: subprocess phase plumbing
    parser.add_argument("--phase", choices=("serial", "pool"),
                        help=argparse.SUPPRESS)
    parser.add_argument("--store", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)

    if args.check:
        return _check(args.check)
    if args.phase == "serial":
        return _phase_serial(args)
    if args.phase == "pool":
        return _phase_pool(args)
    if not args.out:
        parser.error("--out is required when measuring")

    with tempfile.TemporaryDirectory(prefix="repro-sweep-bench-") as tmp:
        tmpdir = pathlib.Path(tmp)
        serial_store = tmpdir / "serial.jsonl"
        pool_store = tmpdir / "pool.jsonl"

        print(f"serial baseline: {args.datasets} x 3 algorithms at "
              f"P={args.nprocs}, scale={args.scale}...", flush=True)
        serial = _run_phase("serial", args, serial_store,
                            tmpdir / "serial.json")
        print(f"  serial: {serial['wall_seconds']:.2f}s "
              f"({serial['records']} drivers)", flush=True)

        print(f"pool cold + resident with {args.workers} worker(s)...",
              flush=True)
        pool = _run_phase("pool", args, pool_store, tmpdir / "pool.json")
        print(f"  cold: {pool['cold_wall_seconds']:.2f}s, "
              f"resident: {pool['resident_wall_seconds']:.2f}s, "
              f"residency hits={pool['residency'].get('hits', 0)}",
              flush=True)

        serial_bytes = serial_store.read_bytes()
        pool_bytes = pool_store.read_bytes()
        # Cold pass must reproduce the serial store byte-for-byte; the
        # forced resident pass appends the exact same records once more.
        store_identical = pool_bytes == serial_bytes + serial_bytes

    cpu_count = multiprocessing.cpu_count()
    target_applies = cpu_count >= MIN_TARGET_CORES
    fragment = {
        "workers": args.workers,
        "cpu_count": cpu_count,
        "datasets": args.datasets,
        "nprocs": args.nprocs,
        "scale": args.scale,
        "drivers": serial["records"],
        "serial_wall_seconds": round(serial["wall_seconds"], 3),
        "pool_cold_wall_seconds": round(pool["cold_wall_seconds"], 3),
        "resident_wall_seconds": round(pool["resident_wall_seconds"], 3),
        "speedup_parallel_cold": round(
            serial["wall_seconds"] / pool["cold_wall_seconds"], 3
        ) if pool["cold_wall_seconds"] > 0 else None,
        "speedup_resident": round(
            serial["wall_seconds"] / pool["resident_wall_seconds"], 3
        ) if pool["resident_wall_seconds"] > 0 else None,
        "residency": pool["residency"],
        "store_identical": store_identical,
        "leaked_segments": pool["leaked_segments"],
        "all_conserved": serial["all_conserved"] and pool["all_conserved"],
        "min_speedup_target": MIN_SPEEDUP_TARGET,
        "target_applies": target_applies,
    }
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(fragment, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    print(f"wrote {out}")
    print(f"  resident speedup {fragment['speedup_resident']}x vs serial "
          f"(cold parallel {fragment['speedup_parallel_cold']}x), "
          f"store_identical={store_identical}, "
          f"target_applies={target_applies} (cpu_count={cpu_count})")
    if not store_identical or fragment["leaked_segments"]:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

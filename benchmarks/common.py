"""Shared configuration and helpers for the benchmark harness.

Every ``bench_*.py`` file regenerates one table or figure of the paper: it
builds the scaled-down synthetic analogue of the paper's input, runs the same
algorithms the figure compares, and prints the rows/series the paper reports
(modelled time, communication volume, message counts, per-rank breakdowns).
``pytest-benchmark`` additionally times the harness body so regressions in
the reproduction itself are visible.

Scale knobs: ``SCALE`` multiplies every dataset size, ``PROCESS_COUNTS`` is
the strong-scaling sweep.  Both are intentionally modest so the full harness
finishes in a few minutes of pure Python; increase them (e.g. ``SCALE=1.0``,
``PROCESS_COUNTS=(16, 64, 256)``) for tighter-shaped curves.
"""

from __future__ import annotations

import os

#: global dataset scale multiplier (1.0 ≈ a few thousand rows per dataset)
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

#: process counts used by the strong-scaling figures
PROCESS_COUNTS = tuple(
    int(p) for p in os.environ.get("REPRO_BENCH_PROCS", "4,16,64").split(",")
)

#: block-fetch split parameter used where the paper uses K=2048
BLOCK_SPLIT = int(os.environ.get("REPRO_BENCH_BLOCK_SPLIT", "32"))

#: datasets used by the squaring / RtA strong-scaling figures (Fig 9 / Fig 11)
SCALING_DATASETS = ("queen", "stokes", "hv15r", "nlpkkt")


def header(title: str) -> None:
    """Print a figure/table banner."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def assert_conserved(run) -> None:
    """Fail the benchmark if the run's ledger violates byte conservation.

    The benchmarks regenerate the paper's communication-volume figures, so an
    unbalanced ledger (bytes sent ≠ bytes received in some phase) would mean
    the plotted numbers are bookkeeping artefacts.
    """
    run.result.ledger.assert_conserved()

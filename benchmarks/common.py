"""Shared configuration and helpers for the benchmark harness.

Every ``bench_*.py`` file regenerates one table or figure of the paper: it
builds the scaled-down synthetic analogue of the paper's input, runs the same
algorithms the figure compares, and prints the rows/series the paper reports
(modelled time, communication volume, message counts, per-rank breakdowns).
``pytest-benchmark`` additionally times the harness body so regressions in
the reproduction itself are visible.

Scale knobs: ``SCALE`` multiplies every dataset size, ``PROCESS_COUNTS`` is
the strong-scaling sweep.  Both are intentionally modest so the full harness
finishes in a few minutes of pure Python; increase them (e.g. ``SCALE=1.0``,
``PROCESS_COUNTS=(16, 64, 256)``) for tighter-shaped curves.
"""

from __future__ import annotations

import os

from repro.experiments import ResultStore, SweepResult, run_grid

#: global dataset scale multiplier (1.0 ≈ a few thousand rows per dataset)
SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.5"))

#: process counts used by the strong-scaling figures
PROCESS_COUNTS = tuple(
    int(p) for p in os.environ.get("REPRO_BENCH_PROCS", "4,16,64").split(",")
)

#: block-fetch split parameter used where the paper uses K=2048
BLOCK_SPLIT = int(os.environ.get("REPRO_BENCH_BLOCK_SPLIT", "32"))

#: datasets used by the squaring / RtA strong-scaling figures (Fig 9 / Fig 11)
SCALING_DATASETS = ("queen", "stokes", "hv15r", "nlpkkt")

#: worker processes for engine-backed figures (0/1 = serial)
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "2"))

#: JSONL trajectory of every engine-backed benchmark run; "" disables
#: persistence (and with it the cross-run cache)
RECORDS_PATH = os.environ.get(
    "REPRO_BENCH_RECORDS",
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "results", "records.jsonl"),
)

#: set REPRO_BENCH_FORCE=1 to re-execute configs whose records are cached
FORCE = os.environ.get("REPRO_BENCH_FORCE", "0").strip().lower() in ("1", "true", "yes")


def records_store():
    """The shared benchmark record store (or None when disabled)."""
    if not RECORDS_PATH:
        return None
    return ResultStore(RECORDS_PATH)


def run_bench_grid(configs) -> SweepResult:
    """Run experiment configs through the engine with the bench defaults.

    Records persist to :data:`RECORDS_PATH`, so re-running a figure is a
    cache lookup; delete the file (or set ``REPRO_BENCH_FORCE=1``) after
    changing the modelled algorithms to invalidate the trajectory.
    """
    return run_grid(configs, workers=WORKERS, store=records_store(), force=FORCE)


def header(title: str) -> None:
    """Print a figure/table banner."""
    print()
    print("=" * 78)
    print(title)
    print("=" * 78)


def assert_conserved(run) -> None:
    """Fail the benchmark if the run's ledger violates byte conservation.

    The benchmarks regenerate the paper's communication-volume figures, so an
    unbalanced ledger (bytes sent ≠ bytes received in some phase) would mean
    the plotted numbers are bookkeeping artefacts.
    """
    run.result.ledger.assert_conserved()


def assert_record_conserved(record) -> None:
    """Engine-record variant of :func:`assert_conserved`."""
    assert record.conserved, (
        f"ledger not conserved for {record.algorithm}/{record.config.strategy} "
        f"at P={record.config.nprocs} on {record.config.dataset}"
    )

"""Triangle counting via masked SpGEMM — the masked-pipeline harness.

``Σ((L·L) ⊙ L)`` with the strictly lower-triangular ``L`` as both operands
and the mask.  Three comparisons per dataset, all through the cached engine:

* the sparsity-aware 1D driver with the late (post-kernel) mask,
* the same run with ``mask_mode="early"`` — the fetch plan pruned against
  the mask's column support (identical count, never more volume),
* the 2D SUMMA baseline (masked the same rank-local way).

Counts are asserted exact against the local scipy reference at execution
time (``run_triangles`` raises on mismatch), so every number printed here
is a verified triangle count.
"""

from __future__ import annotations

from repro.analysis import format_table, mebibytes, seconds
from repro.experiments import RunConfig

from common import SCALE, assert_record_conserved, header, run_bench_grid

NPROCS = 4
DATASETS = ("eukarya", "hv15r")


def _configs():
    configs = []
    for dataset in DATASETS:
        shared = dict(
            dataset=dataset,
            workload="triangles",
            nprocs=NPROCS,
            block_split=32,
            scale=SCALE,
        )
        configs.append(RunConfig(algorithm="1d", **shared))
        configs.append(RunConfig(algorithm="1d", mask_mode="early", **shared))
        configs.append(RunConfig(algorithm="2d", **shared))
    return configs


def _run():
    result = run_bench_grid(_configs())
    rows = []
    for record in result.records:
        assert_record_conserved(record)
        rows.append(
            {
                "dataset": record.config.dataset,
                "algorithm": record.algorithm,
                "mask": record.triangles.mask_mode,
                "triangles": record.triangles.triangles,
                "L nnz": record.triangles.l_nnz,
                "time": seconds(record.elapsed_time),
                "volume": mebibytes(record.communication_volume),
                "messages": record.message_count,
            }
        )
    return rows, result.records


def test_masked_triangle_counting(benchmark):
    rows, records = benchmark.pedantic(_run, rounds=1, iterations=1)
    header(f"Triangle counting (L·L masked by L, P={NPROCS})")
    print(format_table(rows))
    per_dataset = {}
    for record in records:
        assert record.triangles.reference_match
        per_dataset.setdefault(record.config.dataset, []).append(record)
    for dataset, group in per_dataset.items():
        late_1d, early_1d, summa = group
        # Same exact count on every driver and mask mode.
        counts = {r.triangles.triangles for r in group}
        assert len(counts) == 1, (dataset, counts)
        # Early masking can only shrink the 1D fetch plan.
        assert early_1d.communication_volume <= late_1d.communication_volume
        # The mask itself is free of communication: the masked product is
        # bounded by the wedge count either way, and 1D volume stays below
        # the broadcast-everything SUMMA baseline on these clustered inputs.
        assert late_1d.communication_volume < summa.communication_volume

"""Chaos-recovery harness: kill -9 a live ``repro serve`` mid-sweep and
prove the restarted service converges to a byte-identical store.

The script is deterministic despite being a kill test: a fault plan
(``hang-in-kernel:3@3600``) stalls the service after exactly two persisted
records, so the SIGKILL always lands mid-flight with a known store
prefix.  The shared ``REPRO_FAULT_STATE`` counter file ensures the hang
does not re-fire during recovery.

Flow:

1. clean serial ``run_grid`` of the grid → baseline store bytes
2. ``python -m repro serve --journal`` in a subprocess; submit the grid
3. poll ``stats`` until exactly 2 records are persisted (3rd config hung)
4. ``kill -9`` the service; assert the partial store is a baseline prefix
5. restart serve on the same store+journal; the interrupted job is
   re-adopted before the socket binds; ``results(job-1, wait=True)``
6. byte-compare the recovered store against the baseline, check the
   journal converged, attempts stayed within the retry budget, and no
   orphan ``/dev/shm`` segment survived

Run under ``REPRO_SHM_TRANSPORT=1`` and ``=0`` (CI does both legs).
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.experiments import ResultStore, RunConfig, run_grid  # noqa: E402
from repro.experiments.journal import Journal  # noqa: E402
from repro.experiments.service import ServiceClient  # noqa: E402
from repro.matrices.transport import SEGMENT_PREFIX, _pid_alive  # noqa: E402

#: six configs; the fault plan hangs the third execution forever
_NPROCS = (2, 4, 8, 16, 32, 64)
_FAULT_PLAN = "hang-in-kernel:3@3600"
_HUNG_AFTER = 2  # records persisted before the hang


def _configs() -> list:
    return [
        RunConfig(dataset="hv15r", nprocs=p, block_split=16, scale=0.05)
        for p in _NPROCS
    ]


def _grid_payload() -> dict:
    return {
        "datasets": ["hv15r"],
        "process_counts": list(_NPROCS),
        "block_splits": [16],
        "scale": 0.05,
    }


def _spawn_serve(sock: Path, store: Path, jdir: Path, env: dict,
                 label: str) -> subprocess.Popen:
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--socket", str(sock),
         "--records", str(store), "--journal", str(jdir)],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True, env=env,
    )
    banner = proc.stdout.readline()
    assert "listening on" in banner, f"{label}: bad banner: {banner!r}"
    print(f"[chaos] {label}: pid={proc.pid} {banner.strip()}")
    return proc


def _poll_persisted(sock: Path, want: int, timeout: float = 120.0) -> dict:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        with ServiceClient(socket_path=sock) as client:
            stats = client.stats()
        if stats["scheduler"]["records_persisted"] >= want:
            return stats
        time.sleep(0.1)
    raise AssertionError(
        f"service never persisted {want} records within {timeout}s"
    )


def _orphan_segments() -> list:
    shm = Path("/dev/shm")
    if not shm.is_dir():
        return []
    leaked = []
    for entry in shm.glob(SEGMENT_PREFIX + "*"):
        pid_part = entry.name[len(SEGMENT_PREFIX):].split("_", 1)[0]
        if not (pid_part.isdigit() and _pid_alive(int(pid_part))):
            leaked.append(entry.name)
    return leaked


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workdir", default=None,
                        help="scratch directory (default: a fresh tempdir)")
    args = parser.parse_args(argv)

    scratch = tempfile.TemporaryDirectory(prefix="chaos-")
    workdir = Path(args.workdir) if args.workdir else Path(scratch.name)
    workdir.mkdir(parents=True, exist_ok=True)
    shm_transport = os.environ.get("REPRO_SHM_TRANSPORT", "0")
    print(f"[chaos] workdir={workdir} REPRO_SHM_TRANSPORT={shm_transport}")

    # 1. Clean serial baseline (no fault plan in this process).
    baseline_store = ResultStore(workdir / "baseline.jsonl")
    run_grid(_configs(), workers=0, store=baseline_store)
    baseline = baseline_store.path.read_bytes()
    n_rows = len(baseline.splitlines())
    print(f"[chaos] baseline: {n_rows} rows, {len(baseline)} bytes")

    sock = workdir / "serve.sock"
    store = workdir / "records.jsonl"
    jdir = workdir / "journal"
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(Path(__file__).resolve().parent.parent / "src")
        + os.pathsep + env.get("PYTHONPATH", "")
    )
    env["REPRO_FAULT_PLAN"] = _FAULT_PLAN
    env["REPRO_FAULT_STATE"] = str(workdir / "fault-state.json")

    # 2–4. Serve, stall deterministically, kill -9 mid-flight.
    proc = _spawn_serve(sock, store, jdir, env, "victim")
    try:
        with ServiceClient(socket_path=sock) as client:
            ack = client.submit(grid=_grid_payload())
            assert ack["ok"], ack
            job_id = ack["job_id"]
        _poll_persisted(sock, _HUNG_AFTER)
    except BaseException:
        proc.kill()
        proc.wait(timeout=30)
        raise
    os.kill(proc.pid, signal.SIGKILL)
    proc.wait(timeout=30)
    print(f"[chaos] SIGKILL delivered after {_HUNG_AFTER} persisted records")

    partial = store.read_bytes()
    clean_prefix = partial[: partial.rfind(b"\n") + 1]
    assert baseline.startswith(clean_prefix), (
        "partial store is not a byte-exact prefix of the baseline"
    )
    assert len(clean_prefix.splitlines()) == _HUNG_AFTER
    interrupted = Journal(jdir).interrupted_jobs()
    assert [j.job_id for j in interrupted] == [job_id], interrupted

    # 5. Restart on the same debris; the fault counter in REPRO_FAULT_STATE
    # already recorded the hang, so recovery runs clean.
    proc = _spawn_serve(sock, store, jdir, env, "successor")
    try:
        with ServiceClient(socket_path=sock) as client:
            stats = client.stats()
            assert stats["adopted_jobs"] == [job_id], stats
            reply = client.results(job_id, wait=True)
            assert reply["ok"] and reply["state"] == "done", reply
            assert len(reply["records"]) == len(_NPROCS)
            client.shutdown()
    except BaseException:
        proc.kill()
        proc.wait(timeout=30)
        raise
    assert proc.wait(timeout=60) == 0

    # 6. Recovery converged: byte-identical store, quiet journal, bounded
    # attempts, no leaked shm segments.
    recovered = store.read_bytes()
    assert recovered == baseline, (
        f"recovered store differs from baseline "
        f"({len(recovered)} vs {len(baseline)} bytes)"
    )
    assert Journal(jdir).interrupted_jobs() == []
    jobs = Journal(jdir).recover()
    worst = max(
        (a for job in jobs.values() for a in job.attempts.values()),
        default=0,
    )
    assert worst <= 2, f"a task was dispatched {worst} times (budget is 2)"
    leaked = _orphan_segments()
    assert not leaked, f"leaked shm segments: {leaked}"

    print(f"[chaos] ok: kill -9 mid-flight, restart re-adopted {job_id}, "
          f"store byte-identical ({n_rows} rows), max attempts {worst}, "
          f"/dev/shm clean (shm_transport={shm_transport})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

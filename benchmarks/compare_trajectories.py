"""Assert modelled counters are unchanged across two ``BENCH_*.json`` snapshots.

The per-PR trajectory files share config hashes for configs that existed in
both PRs (hash stability across schema-additive changes is guaranteed by
``RunConfig.canonical_json``'s elide-at-default rule).  For every overlapping
hash the *modelled* counters — communication volume and message count, and
optionally the modelled times — must match exactly: they are deterministic
and machine-independent, so any drift means the accounting changed::

    PYTHONPATH=src python benchmarks/compare_trajectories.py \
        BENCH_PR3.json BENCH_PR4.json

``--walls`` additionally diffs the ``kernel_walls`` sections (written by
``kernel_walls.py`` / ``trajectory.py --kernel-walls``).  Absolute wall
seconds are machine-dependent, so the regression gate compares each
variant's *speedup over the pure-python reference* — both sides of that
ratio come from the same host and job, which makes the gate portable across
differently-sized runners.  A candidate speedup more than
``--max-wall-regression`` percent below the baseline's fails the gate; the
absolute walls are printed as an informational table either way.

Exits 0 when every overlapping config matches (and at least one overlaps),
1 on a counter mismatch or wall regression, 2 on usage/file errors.  New
configs appearing only in the newer snapshot (new workloads, new axes) are
reported but never fail the comparison.
"""

from __future__ import annotations

import argparse
import json
import sys

#: counters every overlapping config must reproduce exactly
STRICT_FIELDS = ("communication_volume", "message_count")
#: counters compared when --times is given (deterministic floats; exact)
TIME_FIELDS = ("elapsed_time",)


def _load(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        return json.load(fh)


def _rows_by_hash(document: dict) -> dict:
    rows = {}
    for row in document.get("records", []):
        h = row.get("config_hash")
        if h:  # override-produced records carry an empty hash — skip them
            rows[h] = row
    return rows


def _compare_walls(base_doc: dict, cand_doc: dict, max_regression_pct: float,
                   table_out: str | None) -> list:
    """Diff the kernel_walls sections; return gate failures (possibly empty).

    Writes the informational wall table (markdown) to ``table_out`` when
    given.  Wall *seconds* never gate — only speedup ratios do.
    """
    failures = []
    base = base_doc.get("kernel_walls")
    cand = cand_doc.get("kernel_walls")
    if not base:
        failures.append("baseline trajectory has no kernel_walls section")
    if not cand:
        failures.append("candidate trajectory has no kernel_walls section")
    if failures:
        return failures

    base_speed = base.get("speedup_vs_python", {})
    cand_speed = cand.get("speedup_vs_python", {})
    lines = [
        "| variant | baseline wall (s) | candidate wall (s) | "
        "baseline speedup | candidate speedup |",
        "|---|---|---|---|---|",
    ]
    for variant in sorted(set(base.get("walls", {})) | set(cand.get("walls", {}))):
        bw = base.get("walls", {}).get(variant, {}).get("wall_seconds")
        cw = cand.get("walls", {}).get(variant, {}).get("wall_seconds")
        bs = base_speed.get(variant)
        cs = cand_speed.get(variant)
        lines.append(
            f"| {variant} "
            f"| {'-' if bw is None else f'{bw:.2f}'} "
            f"| {'-' if cw is None else f'{cw:.2f}'} "
            f"| {'-' if bs is None else f'{bs}x'} "
            f"| {'-' if cs is None else f'{cs}x'} |"
        )
    table = "\n".join(lines)
    print(table)
    if table_out:
        with open(table_out, "w", encoding="utf-8") as fh:
            fh.write("# Kernel wall-clock trajectory\n\n")
            fh.write(f"Harness: `{cand.get('harness')}` "
                     f"P={cand.get('nprocs')} scale={cand.get('scale')}\n\n")
            fh.write(table + "\n")

    floor = 1.0 - max_regression_pct / 100.0
    for variant, baseline_speedup in sorted(base_speed.items()):
        candidate_speedup = cand_speed.get(variant)
        if candidate_speedup is None:
            failures.append(
                f"{variant}: candidate measured no speedup (baseline "
                f"{baseline_speedup}x)"
            )
            continue
        if candidate_speedup < baseline_speedup * floor:
            failures.append(
                f"{variant}: speedup vs python regressed "
                f"{baseline_speedup}x -> {candidate_speedup}x "
                f"(> {max_regression_pct:.0f}% below baseline)"
            )
    return failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compare modelled counters of two bench trajectories"
    )
    parser.add_argument("baseline", help="older BENCH_*.json")
    parser.add_argument("candidate", help="newer BENCH_*.json")
    parser.add_argument("--times", action="store_true",
                        help="additionally require modelled times to match")
    parser.add_argument("--walls", action="store_true",
                        help="diff kernel_walls sections and gate on speedup "
                             "regression")
    parser.add_argument("--max-wall-regression", type=float, default=25.0,
                        help="allowed %% drop of a variant's speedup vs the "
                             "python reference (default 25)")
    parser.add_argument("--wall-table", default=None,
                        help="write the wall comparison as a markdown table "
                             "to this path (CI artifact)")
    args = parser.parse_args(argv)

    try:
        base_doc = _load(args.baseline)
        cand_doc = _load(args.candidate)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot load trajectory: {exc}", file=sys.stderr)
        return 2
    baseline = _rows_by_hash(base_doc)
    candidate = _rows_by_hash(cand_doc)

    overlap = sorted(set(baseline) & set(candidate))
    only_new = len(set(candidate) - set(baseline))
    only_old = len(set(baseline) - set(candidate))
    if not overlap:
        print(
            f"no overlapping config hashes between {args.baseline} "
            f"({len(baseline)} rows) and {args.candidate} ({len(candidate)} rows)",
            file=sys.stderr,
        )
        return 1

    fields = STRICT_FIELDS + (TIME_FIELDS if args.times else ())
    mismatches = []
    for h in overlap:
        for field in fields:
            old, new = baseline[h].get(field), candidate[h].get(field)
            if old != new:
                mismatches.append((h, field, old, new))

    if mismatches:
        print(f"{len(mismatches)} modelled-counter mismatches:", file=sys.stderr)
        for h, field, old, new in mismatches:
            row = baseline[h]
            print(
                f"  {h} ({row.get('workload')}/{row.get('dataset')}/"
                f"{row.get('algorithm')} P={row.get('nprocs')}): "
                f"{field} {old} -> {new}",
                file=sys.stderr,
            )
        return 1

    print(
        f"{len(overlap)} overlapping configs: all modelled counters unchanged "
        f"({', '.join(fields)}); {only_new} new-only, {only_old} baseline-only"
    )

    if args.walls:
        failures = _compare_walls(
            base_doc, cand_doc, args.max_wall_regression, args.wall_table
        )
        if failures:
            print(f"{len(failures)} wall-gate failures:", file=sys.stderr)
            for failure in failures:
                print(f"  {failure}", file=sys.stderr)
            return 1
        print(
            f"kernel walls within {args.max_wall_regression:.0f}% speedup "
            f"regression budget"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())

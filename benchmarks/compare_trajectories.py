"""Assert modelled counters are unchanged across two ``BENCH_*.json`` snapshots.

The per-PR trajectory files share config hashes for configs that existed in
both PRs (hash stability across schema-additive changes is guaranteed by
``RunConfig.canonical_json``'s elide-at-default rule).  For every overlapping
hash the *modelled* counters — communication volume and message count, and
optionally the modelled times — must match exactly: they are deterministic
and machine-independent, so any drift means the accounting changed::

    PYTHONPATH=src python benchmarks/compare_trajectories.py \
        BENCH_PR3.json BENCH_PR4.json

Exits 0 when every overlapping config matches (and at least one overlaps),
1 on a counter mismatch, 2 on usage/file errors.  New configs appearing only
in the newer snapshot (new workloads, new axes) are reported but never fail
the comparison.
"""

from __future__ import annotations

import argparse
import json
import sys

#: counters every overlapping config must reproduce exactly
STRICT_FIELDS = ("communication_volume", "message_count")
#: counters compared when --times is given (deterministic floats; exact)
TIME_FIELDS = ("elapsed_time",)


def _rows_by_hash(path: str) -> dict:
    with open(path, encoding="utf-8") as fh:
        document = json.load(fh)
    rows = {}
    for row in document.get("records", []):
        h = row.get("config_hash")
        if h:  # override-produced records carry an empty hash — skip them
            rows[h] = row
    return rows


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="compare modelled counters of two bench trajectories"
    )
    parser.add_argument("baseline", help="older BENCH_*.json")
    parser.add_argument("candidate", help="newer BENCH_*.json")
    parser.add_argument("--times", action="store_true",
                        help="additionally require modelled times to match")
    args = parser.parse_args(argv)

    try:
        baseline = _rows_by_hash(args.baseline)
        candidate = _rows_by_hash(args.candidate)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"cannot load trajectory: {exc}", file=sys.stderr)
        return 2

    overlap = sorted(set(baseline) & set(candidate))
    only_new = len(set(candidate) - set(baseline))
    only_old = len(set(baseline) - set(candidate))
    if not overlap:
        print(
            f"no overlapping config hashes between {args.baseline} "
            f"({len(baseline)} rows) and {args.candidate} ({len(candidate)} rows)",
            file=sys.stderr,
        )
        return 1

    fields = STRICT_FIELDS + (TIME_FIELDS if args.times else ())
    mismatches = []
    for h in overlap:
        for field in fields:
            old, new = baseline[h].get(field), candidate[h].get(field)
            if old != new:
                mismatches.append((h, field, old, new))

    if mismatches:
        print(f"{len(mismatches)} modelled-counter mismatches:", file=sys.stderr)
        for h, field, old, new in mismatches:
            row = baseline[h]
            print(
                f"  {h} ({row.get('workload')}/{row.get('dataset')}/"
                f"{row.get('algorithm')} P={row.get('nprocs')}): "
                f"{field} {old} -> {new}",
                file=sys.stderr,
            )
        return 1

    print(
        f"{len(overlap)} overlapping configs: all modelled counters unchanged "
        f"({', '.join(fields)}); {only_new} new-only, {only_old} baseline-only"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())

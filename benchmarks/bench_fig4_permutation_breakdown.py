"""Figure 4 — impact of permutation strategies on squaring (per-rank breakdown).

The paper shows per-MPI-process comm/comp/other bars for hv15r (none vs
random) and eukarya (none vs random vs METIS).  This harness prints the same
breakdowns and asserts the headline findings: random permutation is the worst
for the 1D algorithm on hv15r; METIS is the right choice on eukarya.
"""

from __future__ import annotations

from repro.analysis import breakdown_table, format_table, seconds
from repro.apps.squaring import run_squaring
from repro.matrices import load_dataset

from common import BLOCK_SPLIT, SCALE, header

NPROCS = 16


def _run_all():
    runs = {}
    hv = load_dataset("hv15r", scale=SCALE)
    for strategy in ("none", "random"):
        runs[("hv15r", strategy)] = run_squaring(
            hv, algorithm="1d", strategy=strategy, nprocs=NPROCS,
            block_split=BLOCK_SPLIT, dataset="hv15r",
        )
    eu = load_dataset("eukarya", scale=max(0.1, SCALE / 2))
    for strategy in ("none", "random", "metis"):
        runs[("eukarya", strategy)] = run_squaring(
            eu, algorithm="1d", strategy=strategy, nprocs=NPROCS,
            block_split=BLOCK_SPLIT, dataset="eukarya", seed=0,
        )
    return runs


def test_fig4_permutation_breakdown(benchmark):
    runs = benchmark.pedantic(_run_all, rounds=1, iterations=1)
    header("Figure 4: permutation impact on squaring (sparsity-aware 1D, P=16)")
    summary = []
    for (dataset, strategy), run in runs.items():
        summary.append(
            {
                "dataset": dataset,
                "strategy": strategy,
                "comm": seconds(run.result.comm_time),
                "comp": seconds(run.result.comp_time),
                "other": seconds(run.result.other_time),
                "total": seconds(run.spgemm_time),
                "+permutation": seconds(run.total_time_with_permutation),
            }
        )
    print(format_table(summary, title="summary (modelled time)"))
    for (dataset, strategy) in (("hv15r", "none"), ("eukarya", "metis")):
        print()
        print(breakdown_table(runs[(dataset, strategy)].result,
                              title=f"per-rank breakdown: {dataset} / {strategy}"))

    # Paper findings: random permutation is the worst performer on hv15r;
    # METIS beats the natural order on eukarya (excluding partitioning cost).
    assert runs[("hv15r", "none")].result.comm_time < runs[("hv15r", "random")].result.comm_time
    assert runs[("hv15r", "none")].spgemm_time < runs[("hv15r", "random")].spgemm_time
    assert (
        runs[("eukarya", "metis")].result.communication_volume
        < runs[("eukarya", "none")].result.communication_volume
    )

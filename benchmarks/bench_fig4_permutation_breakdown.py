"""Figure 4 — impact of permutation strategies on squaring (per-rank breakdown).

The paper shows per-MPI-process comm/comp/other bars for hv15r (none vs
random) and eukarya (none vs random vs METIS).  This harness prints the same
breakdowns and asserts the headline findings: random permutation is the worst
for the 1D algorithm on hv15r; METIS is the right choice on eukarya.  Every
(dataset, strategy) point runs through the experiment engine and the bars are
rendered from the persisted records' ``per_rank_*`` fields.
"""

from __future__ import annotations

from repro.analysis import format_table, record_breakdown_table, seconds
from repro.experiments import RunConfig

from common import BLOCK_SPLIT, SCALE, assert_record_conserved, header, run_bench_grid

NPROCS = 16

CASES = (
    ("hv15r", SCALE, ("none", "random")),
    ("eukarya", max(0.1, SCALE / 2), ("none", "random", "metis")),
)


def _configs():
    return [
        (
            (dataset, strategy),
            RunConfig(
                dataset=dataset,
                algorithm="1d",
                strategy=strategy,
                nprocs=NPROCS,
                block_split=BLOCK_SPLIT,
                seed=0,
                scale=scale,
            ),
        )
        for dataset, scale, strategies in CASES
        for strategy in strategies
    ]


def _run():
    keyed = _configs()
    result = run_bench_grid([config for _, config in keyed])
    return {key: record for (key, _), record in zip(keyed, result.records)}


def test_fig4_permutation_breakdown(benchmark):
    records = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 4: permutation impact on squaring (sparsity-aware 1D, P=16)")
    summary = []
    for (dataset, strategy), record in records.items():
        assert_record_conserved(record)
        summary.append(
            {
                "dataset": dataset,
                "strategy": strategy,
                "comm": seconds(record.comm_time),
                "comp": seconds(record.comp_time),
                "other": seconds(record.other_time),
                "total": seconds(record.elapsed_time),
                "+permutation": seconds(record.total_time_with_permutation),
            }
        )
    print(format_table(summary, title="summary (modelled time)"))
    for dataset, strategy in (("hv15r", "none"), ("eukarya", "metis")):
        print()
        print(record_breakdown_table(
            records[(dataset, strategy)],
            title=f"per-rank breakdown: {dataset} / {strategy}",
        ))

    # Paper findings: random permutation is the worst performer on hv15r;
    # METIS beats the natural order on eukarya (excluding partitioning cost).
    assert records[("hv15r", "none")].comm_time < records[("hv15r", "random")].comm_time
    assert records[("hv15r", "none")].elapsed_time < records[("hv15r", "random")].elapsed_time
    assert (
        records[("eukarya", "metis")].communication_volume
        < records[("eukarya", "none")].communication_volume
    )

"""Table III and Figures 10–12 — the AMG restriction-operator experiments.

* Table III: dimensions/nnz of the MIS-2 restriction operators (one nonzero
  per row).
* Figure 10: permutation comparison on RᵀA (queen), per-rank breakdown.
* Figure 11: strong scaling of RᵀA across datasets and algorithms.
* Figure 12: sparsity-aware 1D vs outer-product 1D on (RᵀA)·R.
"""

from __future__ import annotations

from repro.analysis import breakdown_table, format_table, seconds
from repro.apps.amg import build_restriction, left_multiplication, right_multiplication
from repro.matrices import load_dataset
from repro.partition import apply_symmetric_permutation, random_symmetric_permutation

from common import PROCESS_COUNTS, SCALE, SCALING_DATASETS, header


def _restrictions():
    out = {}
    for name in SCALING_DATASETS:
        A = load_dataset(name, scale=SCALE)
        out[name] = (A, build_restriction(A, seed=0))
    return out


def test_table3_restriction_stats(benchmark):
    data = benchmark.pedantic(_restrictions, rounds=1, iterations=1)
    header("Table III: restriction operator statistics (MIS-2 aggregation)")
    rows = []
    for name, (A, rest) in data.items():
        rows.append(
            {
                "dataset": name,
                "nrows(R)": rest.R.nrows,
                "ncols(R)": rest.R.ncols,
                "nnz(R)": rest.R.nnz,
                "coarsening factor": f"{rest.n_fine / rest.n_coarse:.1f}x",
            }
        )
        assert rest.R.nnz == rest.R.nrows  # exactly one nonzero per row
    print(format_table(rows))


def test_fig10_rta_permutation_comparison(benchmark):
    def _run():
        A = load_dataset("queen", scale=SCALE)
        rest = build_restriction(A, seed=0)
        natural = left_multiplication(rest.R, A, algorithm="1d", nprocs=16)
        perm = random_symmetric_permutation(A.nrows, seed=1)
        A_perm = apply_symmetric_permutation(A, perm)
        R_perm = rest.R.permute(row_perm=perm)
        randomised = left_multiplication(R_perm, A_perm, algorithm="1d", nprocs=16)
        return natural, randomised

    natural, randomised = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 10: RtA on queen — original ordering vs random permutation (P=16)")
    print(breakdown_table(natural, title="original ordering"))
    print()
    print(breakdown_table(randomised, title="random permutation"))
    print(
        f"\ncomm time: original {seconds(natural.comm_time)} vs "
        f"random {seconds(randomised.comm_time)}"
    )
    assert natural.comm_time < randomised.comm_time


def test_fig11_rta_strong_scaling(benchmark):
    """Fig 11 has two parts: (a) scaling of the 1D algorithm's RᵀA across the
    four datasets, (b) on queen, the full restriction product RᵀA + (RᵀA)R
    compared across SpGEMM variants — the comparison the paper's text calls
    out ("1D SpGEMM variant is better than all other 2D, 3D algorithms")."""

    def _run():
        scaling_rows = []
        for name in SCALING_DATASETS:
            A = load_dataset(name, scale=SCALE)
            rest = build_restriction(A, seed=0)
            for nprocs in PROCESS_COUNTS:
                res = left_multiplication(rest.R, A, algorithm="1d", nprocs=nprocs)
                scaling_rows.append(
                    {
                        "dataset": name,
                        "P": nprocs,
                        "time": seconds(res.elapsed_time),
                        "comm": seconds(res.comm_time),
                        "other": seconds(res.other_time),
                        "volume (B)": res.communication_volume,
                    }
                )
        # Variant comparison on queen: total RtA + (RtA)R per variant.
        Q = load_dataset("queen", scale=SCALE)
        rest_q = build_restriction(Q, seed=0)
        comparison_rows = []
        totals = {}
        for label, left_algo, right_algo in (
            ("1d (+outer-product)", "1d", "outer-product"),
            ("2d", "2d", "2d"),
            ("3d", "3d", "3d"),
        ):
            left = left_multiplication(rest_q.R, Q, algorithm=left_algo, nprocs=16)
            right = right_multiplication(left.C, rest_q.R, algorithm=right_algo, nprocs=16)
            total = left.elapsed_time + right.elapsed_time
            totals[label] = total
            comparison_rows.append(
                {
                    "variant": label,
                    "RtA": seconds(left.elapsed_time),
                    "(RtA)R": seconds(right.elapsed_time),
                    "total": seconds(total),
                }
            )
        return scaling_rows, comparison_rows, totals

    scaling_rows, comparison_rows, totals = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 11a: strong scaling of RtA with the sparsity-aware 1D algorithm")
    print(format_table(scaling_rows))
    header("Figure 11b: restriction product variants on queen (P=16, RtA + (RtA)R)")
    print(format_table(comparison_rows))
    assert totals["1d (+outer-product)"] == min(totals.values())


def test_fig12_outer_product_vs_1d_on_right_multiplication(benchmark):
    def _run():
        A = load_dataset("queen", scale=SCALE)
        rest = build_restriction(A, seed=0)
        rta = left_multiplication(rest.R, A, algorithm="1d", nprocs=16)
        rows = []
        times = {}
        for algorithm in ("outer-product", "1d"):
            res = right_multiplication(rta.C, rest.R, algorithm=algorithm, nprocs=16)
            times[algorithm] = res.elapsed_time
            rows.append(
                {
                    "algorithm": res.algorithm,
                    "time": seconds(res.elapsed_time),
                    "volume (B)": res.communication_volume,
                    "messages": res.message_count,
                }
            )
        return rows, times

    rows, times = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 12: (RtA)R — outer-product 1D vs sparsity-aware 1D (queen, P=16)")
    print(format_table(rows))
    assert times["outer-product"] < times["1d"]

"""Table III and Figures 10–12 — the AMG restriction-operator experiments.

* Table III: dimensions/nnz of the MIS-2 restriction operators (one nonzero
  per row).
* Figure 10: permutation comparison on RᵀA (queen), per-rank breakdown.
* Figure 11: strong scaling of RᵀA across datasets and algorithms.
* Figure 12: sparsity-aware 1D vs outer-product 1D on (RᵀA)·R.

All points run through the multi-workload experiment engine as
``amg-restriction`` configs — fanned out over workers, cached in the shared
JSONL trajectory — and every figure reads the persisted records (phase
``rta`` for the left multiplication alone, ``rtar`` for the full triple
product with per-phase extras in ``record.amg``).  Table III and Fig 11a
share the same P=16 configs, so the coarsening statistics come from cache
hits of the scaling sweep.
"""

from __future__ import annotations

from repro.analysis import format_table, record_breakdown_table, seconds
from repro.experiments import RunConfig

from common import (
    PROCESS_COUNTS,
    SCALE,
    SCALING_DATASETS,
    assert_record_conserved,
    header,
    run_bench_grid,
)


def _amg_config(
    dataset,
    *,
    phase,
    nprocs=16,
    algorithm="1d",
    right_algorithm=None,
    strategy="none",
    seed=0,
):
    return RunConfig(
        dataset=dataset,
        workload="amg-restriction",
        algorithm=algorithm,
        strategy=strategy,
        nprocs=nprocs,
        seed=seed,
        scale=SCALE,
        amg_phase=phase,
        mis_seed=0,
        right_algorithm=right_algorithm,
    )


def test_table3_restriction_stats(benchmark):
    configs = [_amg_config(name, phase="rta") for name in SCALING_DATASETS]
    result = benchmark.pedantic(run_bench_grid, args=(configs,), rounds=1, iterations=1)
    header("Table III: restriction operator statistics (MIS-2 aggregation)")
    rows = []
    for record in result.records:
        assert_record_conserved(record)
        amg = record.amg
        rows.append(
            {
                "dataset": record.config.dataset,
                "nrows(R)": amg.n_fine,
                "ncols(R)": amg.n_coarse,
                "nnz(R)": amg.r_nnz,
                "coarsening factor": f"{amg.coarsening_factor:.1f}x",
            }
        )
        assert amg.r_nnz == amg.n_fine  # exactly one nonzero per row
    print(format_table(rows))


def test_fig10_rta_permutation_comparison(benchmark):
    configs = [
        _amg_config("queen", phase="rta", strategy="none"),
        _amg_config("queen", phase="rta", strategy="random", seed=1),
    ]
    result = benchmark.pedantic(run_bench_grid, args=(configs,), rounds=1, iterations=1)
    natural, randomised = result.records
    assert_record_conserved(natural)
    assert_record_conserved(randomised)
    header("Figure 10: RtA on queen — original ordering vs random permutation (P=16)")
    print(record_breakdown_table(natural, title="original ordering"))
    print()
    print(record_breakdown_table(randomised, title="random permutation"))
    print(
        f"\ncomm time: original {seconds(natural.comm_time)} vs "
        f"random {seconds(randomised.comm_time)}"
    )
    assert natural.comm_time < randomised.comm_time


def test_fig11_rta_strong_scaling(benchmark):
    """Fig 11 has two parts: (a) scaling of the 1D algorithm's RᵀA across the
    four datasets, (b) on queen, the full restriction product RᵀA + (RᵀA)R
    compared across SpGEMM variants — the comparison the paper's text calls
    out ("1D SpGEMM variant is better than all other 2D, 3D algorithms")."""
    scaling_configs = [
        _amg_config(name, phase="rta", nprocs=nprocs)
        for name in SCALING_DATASETS
        for nprocs in PROCESS_COUNTS
    ]
    variants = (
        ("1d (+outer-product)", "1d", "outer-product"),
        ("2d", "2d", "2d"),
        ("3d", "3d", "3d"),
    )
    variant_configs = [
        _amg_config("queen", phase="rtar", algorithm=left, right_algorithm=right)
        for _, left, right in variants
    ]

    def _run():
        scaling = run_bench_grid(scaling_configs)
        comparison = run_bench_grid(variant_configs)
        return scaling, comparison

    scaling, comparison = benchmark.pedantic(_run, rounds=1, iterations=1)
    scaling_rows = []
    for record in scaling.records:
        assert_record_conserved(record)
        scaling_rows.append(
            {
                "dataset": record.config.dataset,
                "P": record.config.nprocs,
                "time": seconds(record.elapsed_time),
                "comm": seconds(record.comm_time),
                "other": seconds(record.other_time),
                "volume (B)": record.communication_volume,
            }
        )
    comparison_rows = []
    totals = {}
    for (label, _, _), record in zip(variants, comparison.records):
        assert_record_conserved(record)
        totals[label] = record.elapsed_time
        comparison_rows.append(
            {
                "variant": label,
                "RtA": seconds(record.amg.left_time),
                "(RtA)R": seconds(record.amg.right_time),
                "total": seconds(record.elapsed_time),
            }
        )
    header("Figure 11a: strong scaling of RtA with the sparsity-aware 1D algorithm")
    print(format_table(scaling_rows))
    header("Figure 11b: restriction product variants on queen (P=16, RtA + (RtA)R)")
    print(format_table(comparison_rows))
    assert totals["1d (+outer-product)"] == min(totals.values())


def test_fig12_outer_product_vs_1d_on_right_multiplication(benchmark):
    configs = [
        _amg_config("queen", phase="rtar", right_algorithm=algorithm)
        for algorithm in ("outer-product", "1d")
    ]
    result = benchmark.pedantic(run_bench_grid, args=(configs,), rounds=1, iterations=1)
    rows = []
    times = {}
    for config, record in zip(configs, result.records):
        assert_record_conserved(record)
        times[config.right_algorithm] = record.amg.right_time
        rows.append(
            {
                "algorithm": record.algorithm.split("+", 1)[1],
                "time": seconds(record.amg.right_time),
                "volume (B)": record.amg.right_volume,
                "messages": record.amg.right_messages,
            }
        )
    header("Figure 12: (RtA)R — outer-product 1D vs sparsity-aware 1D (queen, P=16)")
    print(format_table(rows))
    assert times["outer-product"] < times["1d"]

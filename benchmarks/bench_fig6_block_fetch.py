"""Figure 6 — block-fetch strategy analysis (RDMA message counts vs K).

The paper shows that grouping columns into blocks sharply reduces the number
of RDMA messages (and improves communication time) relative to per-column
fetching, at the price of a modest volume increase.  This harness sweeps the
split parameter K from whole-matrix fetch (K=1) to per-column fetch (K=∞);
the K axis is the engine's ``block_split`` config field, so the sweep is one
cached grid.
"""

from __future__ import annotations

from repro.analysis import format_table, mebibytes, seconds
from repro.experiments import RunConfig

from common import SCALE, assert_record_conserved, header, run_bench_grid

NPROCS = 8
K_SWEEP = (1, 4, 16, 64, 10**6)  # 10**6 => per-column fetching


def _configs():
    # Random permutation gives the message-heavy regime that makes the
    # blocking strategy necessary (at paper scale even the natural order
    # has millions of candidate columns).
    return [
        RunConfig(
            dataset="hv15r",
            algorithm="1d",
            strategy="random",
            nprocs=NPROCS,
            block_split=K,
            seed=0,
            scale=SCALE,
        )
        for K in K_SWEEP
    ]


def _run():
    result = run_bench_grid(_configs())
    records = {K: record for K, record in zip(K_SWEEP, result.records)}
    rows = []
    for K, record in records.items():
        assert_record_conserved(record)
        rows.append(
            {
                "K (split)": "per-column" if K == 10**6 else K,
                "RDMA msgs": record.rdma_gets,
                "volume": mebibytes(record.communication_volume),
                "comm time": seconds(record.comm_time),
                "total time": seconds(record.elapsed_time),
            }
        )
    return rows, records


def test_fig6_block_fetch(benchmark):
    rows, records = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 6: block-fetch strategy on hv15r (1D squaring, P=8)")
    print(format_table(rows))
    per_column = records[10**6]
    blocked = records[16]
    print(
        f"message reduction at K=16 vs per-column: "
        f"{per_column.rdma_gets / max(1, blocked.rdma_gets):.1f}x"
    )
    # Blocking reduces messages monotonically as K shrinks ...
    gets = [records[K].rdma_gets for K in (1, 4, 16, 64)]
    assert gets == sorted(gets)
    assert blocked.rdma_gets < per_column.rdma_gets
    # ... and the comm time improves as well at this message-dominated scale.
    assert blocked.comm_time <= per_column.comm_time

"""Figure 6 — block-fetch strategy analysis (RDMA message counts vs K).

The paper shows that grouping columns into blocks sharply reduces the number
of RDMA messages (and improves communication time) relative to per-column
fetching, at the price of a modest volume increase.  This harness sweeps the
split parameter K from whole-matrix fetch (K=1) to per-column fetch (K=∞).
"""

from __future__ import annotations

from repro.analysis import format_table, mebibytes, seconds
from repro.apps.squaring import run_squaring
from repro.matrices import load_dataset

from common import SCALE, header

NPROCS = 8
K_SWEEP = (1, 4, 16, 64, 10**6)  # 10**6 => per-column fetching


def _run():
    A = load_dataset("hv15r", scale=SCALE)
    rows = []
    results = {}
    for K in K_SWEEP:
        # Random permutation gives the message-heavy regime that makes the
        # blocking strategy necessary (at paper scale even the natural order
        # has millions of candidate columns).
        run = run_squaring(
            A, algorithm="1d", strategy="random", nprocs=NPROCS, block_split=K,
            dataset="hv15r",
        )
        results[K] = run
        rows.append(
            {
                "K (split)": "per-column" if K == 10**6 else K,
                "RDMA msgs": run.result.rdma_gets,
                "volume": mebibytes(run.result.communication_volume),
                "comm time": seconds(run.result.comm_time),
                "total time": seconds(run.spgemm_time),
            }
        )
    return rows, results


def test_fig6_block_fetch(benchmark):
    rows, results = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 6: block-fetch strategy on hv15r (1D squaring, P=8)")
    print(format_table(rows))
    per_column = results[10**6]
    blocked = results[16]
    print(
        f"message reduction at K=16 vs per-column: "
        f"{per_column.result.rdma_gets / max(1, blocked.result.rdma_gets):.1f}x"
    )
    # Blocking reduces messages monotonically as K shrinks ...
    gets = [results[K].result.rdma_gets for K in (1, 4, 16, 64)]
    assert gets == sorted(gets)
    assert blocked.result.rdma_gets < per_column.result.rdma_gets
    # ... and the comm time improves as well at this message-dominated scale.
    assert blocked.result.comm_time <= per_column.result.comm_time

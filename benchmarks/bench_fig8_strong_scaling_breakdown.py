"""Figure 8 — per-rank breakdown of the 1D algorithm across strong-scaling points.

The paper shows per-process stacked bars at increasing concurrency for hv15r,
highlighting the load imbalance inherent to a sparsity-aware 1D decomposition
and how it is tamed at larger process counts.  The scaling points run through
the experiment engine; the per-rank bars are rendered straight from the
persisted records' ``per_rank_*`` fields.
"""

from __future__ import annotations

from repro.analysis import format_bar_chart, format_table, seconds
from repro.experiments import RunConfig

from common import BLOCK_SPLIT, PROCESS_COUNTS, SCALE, header, run_bench_grid


def _configs():
    return [
        RunConfig(
            dataset="hv15r",
            algorithm="1d",
            strategy="none",
            nprocs=p,
            block_split=BLOCK_SPLIT,
            scale=SCALE,
        )
        for p in PROCESS_COUNTS
    ]


def _run():
    result = run_bench_grid(_configs())
    return {r.config.nprocs: r for r in result.records}


def test_fig8_strong_scaling_breakdown(benchmark):
    records = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 8: per-rank breakdown across process counts (hv15r, 1D)")
    rows = []
    for p, record in records.items():
        rows.append(
            {
                "P": p,
                "total": seconds(record.elapsed_time),
                "comm": seconds(record.comm_time),
                "comp": seconds(record.comp_time),
                "other": seconds(record.other_time),
                "load imbalance (max/mean)": f"{record.load_imbalance:.2f}",
            }
        )
    print(format_table(rows))
    smallest = min(records)
    totals = records[smallest].per_rank_total
    print()
    print(
        format_bar_chart(
            [f"rank {i}" for i in range(len(totals))],
            totals,
            title=f"per-rank total time at P={smallest}",
            unit=" s",
        )
    )
    # Load imbalance exists (>1) but stays bounded, and per-rank computation
    # shrinks as processes are added (the work really is being divided).
    for p, record in records.items():
        assert record.load_imbalance >= 1.0
    ps = sorted(records)
    assert records[ps[-1]].comp_time <= records[ps[0]].comp_time

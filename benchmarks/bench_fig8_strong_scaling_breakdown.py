"""Figure 8 — per-rank breakdown of the 1D algorithm across strong-scaling points.

The paper shows per-process stacked bars at increasing concurrency for hv15r,
highlighting the load imbalance inherent to a sparsity-aware 1D decomposition
and how it is tamed at larger process counts.
"""

from __future__ import annotations

from repro.analysis import breakdown_chart, format_table, seconds
from repro.apps.squaring import run_squaring
from repro.matrices import load_dataset

from common import BLOCK_SPLIT, PROCESS_COUNTS, SCALE, header


def _run():
    A = load_dataset("hv15r", scale=SCALE)
    return {
        p: run_squaring(
            A, algorithm="1d", strategy="none", nprocs=p, block_split=BLOCK_SPLIT,
            dataset="hv15r",
        )
        for p in PROCESS_COUNTS
    }


def test_fig8_strong_scaling_breakdown(benchmark):
    runs = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Figure 8: per-rank breakdown across process counts (hv15r, 1D)")
    rows = []
    for p, run in runs.items():
        rows.append(
            {
                "P": p,
                "total": seconds(run.spgemm_time),
                "comm": seconds(run.result.comm_time),
                "comp": seconds(run.result.comp_time),
                "other": seconds(run.result.other_time),
                "load imbalance (max/mean)": f"{run.result.load_imbalance:.2f}",
            }
        )
    print(format_table(rows))
    smallest = min(runs)
    print()
    print(breakdown_chart(runs[smallest].result, title=f"per-rank total time at P={smallest}"))
    # Load imbalance exists (>1) but stays bounded, and per-rank computation
    # shrinks as processes are added (the work really is being divided).
    for p, run in runs.items():
        assert run.result.load_imbalance >= 1.0
    ps = sorted(runs)
    assert runs[ps[-1]].result.comp_time <= runs[ps[0]].result.comp_time

"""Measure per-kernel-variant wall-clock of the fig9 strong-scaling harness.

Runs ``bench_fig9_squaring_strong_scaling.py`` once per requested
``REPRO_KERNEL`` variant in a subprocess (records disabled — this measures
host wall-clock, not modelled counters), and writes a JSON fragment with the
wall fields plus each variant's speedup over the pure-python reference::

    PYTHONPATH=src python benchmarks/kernel_walls.py \
        --variants python,numpy --nprocs 1024 --out kernel_walls.json

The fragment is what ``trajectory.py --kernel-walls`` embeds into the
committed ``BENCH_PRn.json`` and what the CI wall-trajectory job diffs with
``compare_trajectories.py --walls``.  Wall seconds are machine-dependent;
the speedup *ratios* are what the regression gate compares, because both
sides of a ratio are measured on the same host in the same job.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import time

HARNESS = "bench_fig9_squaring_strong_scaling.py"
REFERENCE = "python"


def run_harness(variant: str, nprocs: int, scale: float, runs: int) -> dict:
    """Time ``runs`` executions of the fig9 harness under one kernel variant."""
    bench_dir = pathlib.Path(__file__).resolve().parent
    env = dict(os.environ)
    env.update(
        REPRO_KERNEL=variant,
        REPRO_BENCH_PROCS=str(nprocs),
        REPRO_BENCH_SCALE=str(scale),
        REPRO_BENCH_RECORDS="",  # wall measurement only; never touch the store
        REPRO_BENCH_WORKERS="0",
    )
    walls = []
    for _ in range(runs):
        start = time.perf_counter()
        proc = subprocess.run(
            [sys.executable, "-m", "pytest", str(bench_dir / HARNESS),
             "-q", "-p", "no:cacheprovider"],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
        )
        wall = time.perf_counter() - start
        if proc.returncode != 0:
            sys.stderr.write(proc.stdout.decode(errors="replace"))
            raise SystemExit(
                f"fig9 harness failed under REPRO_KERNEL={variant} "
                f"(exit {proc.returncode})"
            )
        walls.append(wall)
    return {
        "wall_seconds": min(walls),
        "all_runs_seconds": [round(w, 3) for w in walls],
        "runs": runs,
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="per-kernel-variant wall-clock of the fig9 harness"
    )
    parser.add_argument("--variants", default="python,numpy",
                        help="comma-separated REPRO_KERNEL values to time")
    parser.add_argument("--nprocs", type=int, default=1024,
                        help="simulated process count (REPRO_BENCH_PROCS)")
    parser.add_argument("--scale", type=float, default=0.5,
                        help="dataset scale (REPRO_BENCH_SCALE)")
    parser.add_argument("--runs", type=int,
                        default=int(os.environ.get("REPRO_BENCH_RUNS", "1")),
                        help="timed runs per variant (best is recorded; "
                             "defaults to REPRO_BENCH_RUNS or 1)")
    parser.add_argument("--out", required=True,
                        help="path of the kernel_walls JSON fragment")
    args = parser.parse_args(argv)

    variants = [v.strip() for v in args.variants.split(",") if v.strip()]
    walls: dict = {}
    for variant in variants:
        print(f"timing {HARNESS} under REPRO_KERNEL={variant} "
              f"(P={args.nprocs}, scale={args.scale}, runs={args.runs})...",
              flush=True)
        walls[variant] = run_harness(variant, args.nprocs, args.scale, args.runs)
        print(f"  {variant}: best {walls[variant]['wall_seconds']:.2f}s "
              f"over {args.runs} run(s)", flush=True)

    fragment = {
        "harness": HARNESS,
        "nprocs": args.nprocs,
        "scale": args.scale,
        "reference_variant": REFERENCE,
        "walls": walls,
    }
    if REFERENCE in walls:
        ref = walls[REFERENCE]["wall_seconds"]
        fragment["speedup_vs_python"] = {
            v: round(ref / w["wall_seconds"], 3)
            for v, w in walls.items()
            if v != REFERENCE and w["wall_seconds"] > 0
        }
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(fragment, indent=2, sort_keys=True) + "\n",
                   encoding="utf-8")
    print(f"wrote {out}")
    for v, s in fragment.get("speedup_vs_python", {}).items():
        print(f"  {v}: {s}x vs pure-python reference")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""§V-A — the CV/memA criterion for deciding whether to partition.

The paper recommends computing the ratio of the 1D algorithm's communication
volume to the size of A before running SpGEMM, and partitioning when it
exceeds ~30%.  This harness evaluates the criterion on every dataset analogue
and checks it recommends partitioning exactly for the scattered one.
"""

from __future__ import annotations

from repro.analysis import format_table
from repro.core import should_partition
from repro.matrices import DATASETS, load_dataset

from common import SCALE, header

NPROCS = 16
THRESHOLD = 0.30


def _run():
    rows = []
    decisions = {}
    for name, spec in DATASETS.items():
        A = load_dataset(name, scale=SCALE if name != "eukarya" else max(0.1, SCALE / 2))
        decision, ratio = should_partition(A, nprocs=NPROCS, threshold=THRESHOLD)
        decisions[name] = decision
        rows.append(
            {
                "dataset": name,
                "CV/memA": f"{ratio:.3f}",
                f"partition (>{THRESHOLD:.0%})": "yes" if decision else "no",
                "paper best strategy": spec.paper_best_strategy,
            }
        )
    return rows, decisions


def test_discussion_cv_mema_criterion(benchmark):
    rows, decisions = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Section V-A: CV/memA criterion for applying graph partitioning (P=16)")
    print(format_table(rows))
    # The criterion recommends partitioning for the scattered eukarya-like
    # input and not for the naturally clustered ones — matching the per-dataset
    # strategies the paper found best.
    assert decisions["eukarya"] is True
    for name in ("queen", "hv15r", "nlpkkt", "stokes"):
        assert decisions[name] is False

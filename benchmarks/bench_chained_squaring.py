"""Chained squaring ``A^(2^k)`` on the resident prepare/execute pipeline.

MCL-style iterated squaring is the workload the paper's stationary-``C``
property was made for: each level's product lands already in the 1D layout
the next level consumes, so the chain never assembles a global matrix and
the per-level modelled numbers equal independent ``multiply()`` calls on
the assembled intermediates.  This harness runs a k-level chain per dataset
through the cached engine and checks the per-level ledger identities, plus
the resident-vs-legacy BC accounting delta (the hoisted window setup).
"""

from __future__ import annotations

from repro.analysis import format_table, mebibytes, seconds
from repro.experiments import RunConfig

from common import SCALE, assert_record_conserved, header, run_bench_grid

NPROCS = 8
CHAIN_K = 2
DATASETS = ("hv15r", "eukarya")


def _chain_configs():
    return [
        RunConfig(
            dataset=dataset,
            workload="chained-squaring",
            algorithm="1d",
            nprocs=NPROCS,
            block_split=32,
            scale=SCALE,
            square_k=CHAIN_K,
        )
        for dataset in DATASETS
    ]


def _bc_pair_configs():
    shared = dict(
        dataset="hv15r",
        workload="bc",
        algorithm="1d",
        nprocs=4,
        scale=SCALE,
        bc_sources=8,
        bc_batch=8,
        bc_source_stride=4,
    )
    return [RunConfig(**shared), RunConfig(**shared, resident=True)]


def _run():
    result = run_bench_grid(_chain_configs() + _bc_pair_configs())
    chain_records = result.records[: len(DATASETS)]
    bc_legacy, bc_resident = result.records[len(DATASETS):]
    rows = []
    for dataset, record in zip(DATASETS, chain_records):
        assert_record_conserved(record)
        for level in record.chain.levels:
            rows.append(
                {
                    "dataset": dataset,
                    "level": level.level,
                    "power": 2 ** (level.level + 1),
                    "time": seconds(level.time),
                    "volume": mebibytes(level.volume),
                    "messages": level.messages,
                    "output nnz": level.output_nnz,
                }
            )
    return rows, chain_records, bc_legacy, bc_resident


def test_chained_squaring_levels(benchmark):
    rows, records, _, _ = benchmark.pedantic(_run, rounds=1, iterations=1)
    header(f"Chained squaring A^(2^{CHAIN_K}) on the resident pipeline (P={NPROCS})")
    print(format_table(rows))
    for record in records:
        assert record.chain.k == CHAIN_K
        assert len(record.chain.levels) == CHAIN_K
        # The chain's topline counters are exactly the per-level sums.
        assert record.communication_volume == sum(
            lvl.volume for lvl in record.chain.levels
        )
        assert record.message_count == sum(
            lvl.messages for lvl in record.chain.levels
        )
        # Squaring grows the pattern: nnz is non-decreasing along the chain.
        nnzs = [lvl.output_nnz for lvl in record.chain.levels]
        assert nnzs == sorted(nnzs)


def test_resident_bc_charges_setup_once(benchmark):
    _, _, legacy, resident = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("BC: per-iteration window setup (legacy) vs hoisted resident setup")
    setup = [it for it in resident.bc.iterations if it.phase == "setup"]
    print(
        f"legacy total: {seconds(legacy.elapsed_time)}   "
        f"resident total: {seconds(resident.elapsed_time)}   "
        f"(one-off setup: {seconds(setup[0].time)})"
    )
    assert len(setup) == 1
    assert resident.elapsed_time < legacy.elapsed_time
    # The frontier series itself is untouched — only setup accounting moved.
    legacy_series = [
        (it.phase, it.iteration, it.frontier_nnz) for it in legacy.bc.iterations
    ]
    resident_series = [
        (it.phase, it.iteration, it.frontier_nnz)
        for it in resident.bc.iterations
        if it.phase != "setup"
    ]
    assert legacy_series == resident_series

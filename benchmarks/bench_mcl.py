"""Full Markov clustering on the resident pipeline — the iterative harness.

MCL is the workload HipMCL scaled with distributed SpGEMM and the one the
paper's stationary-``C`` design targets: expansion squares the resident
iterate in place, inflation/pruning are rank-local elementwise operand ops,
and no global matrix is ever assembled between iterations.  The harness
runs MCL to convergence per dataset through the cached engine and prints
the per-iteration expand/inflate/prune series (the MCL analogue of the BC
iteration figures), checking the series reconciles exactly with the
record's topline counters.
"""

from __future__ import annotations

from repro.analysis import format_table, mebibytes, seconds
from repro.experiments import RunConfig

from common import SCALE, assert_record_conserved, header, run_bench_grid

NPROCS = 4
DATASETS = ("eukarya", "hv15r")
MAX_ITERS = 40


def _configs():
    return [
        RunConfig(
            dataset=dataset,
            workload="mcl",
            algorithm="1d",
            nprocs=NPROCS,
            block_split=32,
            scale=SCALE,
            mcl_max_iters=MAX_ITERS,
        )
        for dataset in DATASETS
    ]


def _run():
    result = run_bench_grid(_configs())
    rows = []
    for record in result.records:
        assert_record_conserved(record)
        expand = [it for it in record.mcl.iterations if it.phase == "expand"]
        for it in expand:
            rows.append(
                {
                    "dataset": record.config.dataset,
                    "iter": it.iteration,
                    "time": seconds(it.time),
                    "volume": mebibytes(it.volume),
                    "messages": it.messages,
                    "nnz after expand": it.nnz,
                }
            )
    return rows, result.records


def test_mcl_to_convergence(benchmark):
    rows, records = benchmark.pedantic(_run, rounds=1, iterations=1)
    header(f"Markov clustering to convergence (P={NPROCS}, inflation 2.0)")
    print(format_table(rows))
    for record in records:
        print(
            f"{record.config.dataset}: converged in {record.mcl.n_iterations} "
            f"iterations, {record.mcl.n_clusters} clusters, "
            f"final nnz {record.mcl.final_nnz}, "
            f"total {seconds(record.elapsed_time)} / "
            f"{mebibytes(record.communication_volume)}"
        )
        assert record.mcl.converged
        assert 1 < record.mcl.n_clusters < record.config.nprocs * 10_000
        # The per-phase series reconciles exactly with the topline counters.
        assert record.communication_volume == sum(
            it.volume for it in record.mcl.iterations
        )
        assert record.message_count == sum(
            it.messages for it in record.mcl.iterations
        )
        # Inflation + pruning keep the iterate sparse: the final nnz never
        # exceeds the first expansion's output.
        first_expand = next(
            it for it in record.mcl.iterations if it.phase == "expand"
        )
        assert record.mcl.final_nnz <= first_expand.nnz

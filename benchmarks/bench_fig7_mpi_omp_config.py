"""Figure 7 — MPI × OpenMP configuration sweep at a fixed core budget.

Given c cores, the paper varies processes p and threads t with c = p·t and
finds that intermediate configurations (p between 64 and 256 at their scale)
win: too few processes waste the cores on serial per-process work, too many
make communication dominate.
"""

from __future__ import annotations

from repro.analysis import config_sweep, format_table
from repro.matrices import load_dataset

from common import BLOCK_SPLIT, SCALE, header

TOTAL_CORES = 256


def _run():
    A = load_dataset("hv15r", scale=SCALE)
    return config_sweep(
        A,
        total_cores=TOTAL_CORES,
        algorithm="1d",
        strategy="none",
        block_split=BLOCK_SPLIT,
        min_processes=1,
    )


def test_fig7_mpi_omp_configurations(benchmark):
    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    header(f"Figure 7: MPI x OpenMP configurations at {TOTAL_CORES} cores (hv15r, 1D)")
    display = [{k: v for k, v in row.items() if not k.startswith("_")} for row in rows]
    print(format_table(display))
    times = {row["processes"]: row["_time"] for row in rows}
    best_p = min(times, key=times.get)
    print(f"best process count: {best_p} (paper: intermediate configurations, 64-256)")
    # The extreme all-threads configuration (1 process) must not be the best:
    # per-process serial work stops scaling with threads (Amdahl).
    assert best_p != 1
    # Communication grows with the process count at fixed total work.
    comm = {row["processes"]: float(row["comm (s)"]) for row in rows}
    procs_sorted = sorted(comm)
    assert comm[procs_sorted[0]] <= comm[procs_sorted[-1]]

"""Figure 7 — MPI × OpenMP configuration sweep at a fixed core budget.

Given c cores, the paper varies processes p and threads t with c = p·t and
finds that intermediate configurations (p between 64 and 256 at their scale)
win: too few processes waste the cores on serial per-process work, too many
make communication dominate.  Each (p, t) split runs through the experiment
engine as a ``RunConfig`` with a per-config thread count, fanned out over
workers and cached in the shared JSONL trajectory.
"""

from __future__ import annotations

from repro.analysis import ConfigPoint, format_table
from repro.analysis.sweep import mpi_omp_configurations
from repro.experiments import RunConfig

from common import BLOCK_SPLIT, SCALE, header, run_bench_grid

TOTAL_CORES = 256
MIN_PROCESSES = 1


def _configs():
    return [
        RunConfig(
            dataset="hv15r",
            algorithm="1d",
            strategy="none",
            nprocs=cfg["processes"],
            block_split=BLOCK_SPLIT,
            scale=SCALE,
            threads=cfg["threads"],
        )
        for cfg in mpi_omp_configurations(TOTAL_CORES)
        if cfg["processes"] >= MIN_PROCESSES
    ]


def _run():
    return [
        ConfigPoint.from_record(r) for r in run_bench_grid(_configs()).records
    ]


def test_fig7_mpi_omp_configurations(benchmark):
    points = benchmark.pedantic(_run, rounds=1, iterations=1)
    header(f"Figure 7: MPI x OpenMP configurations at {TOTAL_CORES} cores (hv15r, 1D)")
    print(format_table([p.as_row() for p in points]))
    times = {p.processes: p.elapsed_time for p in points}
    best_p = min(times, key=times.get)
    print(f"best process count: {best_p} (paper: intermediate configurations, 64-256)")
    # The extreme all-threads configuration (1 process) must not be the best:
    # per-process serial work stops scaling with threads (Amdahl).
    assert best_p != 1
    # Communication grows with the process count at fixed total work.
    comm = {p.processes: p.comm_time for p in points}
    procs_sorted = sorted(comm)
    assert comm[procs_sorted[0]] <= comm[procs_sorted[-1]]

"""Ablation benches for the design choices called out in DESIGN.md §6.

1. Local kernel choice (heap vs hash vs dense vs hybrid).
2. Partitioner choice (none vs random vs METIS-like vs RCM).
3. Compacted Ã vs multiplying against uncompacted fetched blocks.
4. Cost-model sensitivity: the algorithm ordering of Fig 9 must not depend on
   the exact machine constants (Perlmutter-like vs laptop-like).

The partitioner and cost-model ablations run through the experiment engine
(the ordering is a config ``strategy``, the machine a config ``cost_model``),
so they cache in the shared trajectory like every other figure.  The local
kernel and compaction ablations stay direct calls: the first measures host
wall-clock (which records never persist, by design) and the second toggles a
kernel-internal flag that is not an experiment axis.
"""

from __future__ import annotations

import time

from repro.analysis import format_table, seconds
from repro.core import SparsityAware1D
from repro.experiments import RunConfig
from repro.matrices import load_dataset
from repro.runtime import SimulatedCluster
from repro.sparse import local_spgemm

from common import BLOCK_SPLIT, SCALE, assert_record_conserved, header, run_bench_grid


def test_ablation_local_kernels(benchmark):
    def _run():
        A = load_dataset("queen", scale=max(0.1, SCALE / 2))
        rows = []
        for kernel in ("hybrid", "dense", "hash", "heap"):
            t0 = time.perf_counter()
            C = local_spgemm(A, A, kernel=kernel)
            rows.append(
                {
                    "kernel": kernel,
                    "wall time": seconds(time.perf_counter() - t0),
                    "output nnz": C.nnz,
                }
            )
        return rows

    rows = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Ablation: local SpGEMM kernel choice (queen squaring, single process)")
    print(format_table(rows))
    nnz = {row["kernel"]: row["output nnz"] for row in rows}
    assert len(set(nnz.values())) == 1  # all kernels agree on the result


STRATEGIES = ("none", "random", "metis", "rcm")


def test_ablation_partitioners(benchmark):
    configs = [
        RunConfig(
            dataset="eukarya",
            algorithm="1d",
            strategy=strategy,
            nprocs=8,
            block_split=BLOCK_SPLIT,
            seed=0,
            scale=max(0.1, SCALE / 2),
        )
        for strategy in STRATEGIES
    ]

    def _run():
        result = run_bench_grid(configs)
        rows = []
        volumes = {}
        for strategy, record in zip(STRATEGIES, result.records):
            assert_record_conserved(record)
            volumes[strategy] = record.communication_volume
            rows.append(
                {
                    "strategy": strategy,
                    "volume (B)": record.communication_volume,
                    "time": seconds(record.elapsed_time),
                    "CV/memA": f"{record.cv_over_mema:.3f}",
                }
            )
        return rows, volumes

    rows, volumes = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Ablation: ordering / partitioner choice (eukarya squaring, 1D, P=8)")
    print(format_table(rows))
    assert volumes["metis"] < volumes["none"]
    assert volumes["metis"] < volumes["random"]


def test_ablation_compaction(benchmark):
    def _run():
        A = load_dataset("hv15r", scale=SCALE)
        rows = []
        results = {}
        for compact in (True, False):
            cluster = SimulatedCluster(8)
            res = SparsityAware1D(block_split=BLOCK_SPLIT, compact=compact).multiply(
                A, A, cluster
            )
            results[compact] = res
            rows.append(
                {
                    "compacted A~": "yes" if compact else "no",
                    "time": seconds(res.elapsed_time),
                    "other time": seconds(res.other_time),
                    "output nnz": res.C.nnz,
                }
            )
        return rows, results

    rows, results = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Ablation: compacted A~ vs uncompacted fetched blocks (hv15r, 1D, P=8)")
    print(format_table(rows))
    assert results[True].C.nnz == results[False].C.nnz


def test_ablation_costmodel_sensitivity(benchmark):
    cases = (("1d", "none"), ("2d", "random"))
    models = ("perlmutter", "laptop")
    configs = [
        RunConfig(
            dataset="queen",
            algorithm=algorithm,
            strategy=strategy,
            nprocs=16,
            block_split=BLOCK_SPLIT,
            seed=0,
            scale=SCALE,
            cost_model=model,
        )
        for model in models
        for algorithm, strategy in cases
    ]

    def _run():
        result = run_bench_grid(configs)
        orderings = {}
        for model, offset in zip(models, range(0, len(configs), len(cases))):
            times = {}
            for (algorithm, _), record in zip(cases, result.records[offset:offset + len(cases)]):
                assert_record_conserved(record)
                times[algorithm] = record.elapsed_time
            orderings[model] = min(times, key=times.get)
        return orderings

    orderings = benchmark.pedantic(_run, rounds=1, iterations=1)
    header("Ablation: cost-model sensitivity of the 1D-vs-2D ordering (queen, P=16)")
    rows = [{"machine model": k, "fastest algorithm": v} for k, v in orderings.items()]
    print(format_table(rows))
    # The winner must not depend on the machine constants.
    assert orderings["perlmutter"] == orderings["laptop"] == "1d"
